#include "shard/shard_server.h"

#include <utility>

#include "net/wire.h"

namespace kspr {

namespace {
/// Accept-poll slice; bounds how long Stop() waits on the accept thread.
constexpr int kAcceptPollMs = 50;
}  // namespace

ShardServer::ShardServer(ShardWorker* worker) : worker_(worker) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

ShardServer::~ShardServer() { Stop(); }

void ShardServer::Stop() {
  if (stop_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> handlers;
  {
    MutexLock lock(&handlers_mu_);
    handlers.swap(handlers_);
  }
  // Handlers notice stop_ at their next poll slice (RecvAll runs under a
  // short deadline loop in ServeConnection).
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void ShardServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    net::Socket conn = listener_.Accept(kAcceptPollMs);
    if (!conn.valid()) continue;
    MutexLock lock(&handlers_mu_);
    if (stop_.load(std::memory_order_relaxed)) return;
    handlers_.emplace_back(
        [this, c = std::move(conn)]() mutable { ServeConnection(std::move(c)); });
  }
}

void ShardServer::ServeConnection(net::Socket conn) {
  std::vector<uint8_t> header(net::kFrameHeaderSize);
  std::vector<uint8_t> payload;
  while (!stop_.load(std::memory_order_relaxed)) {
    net::FrameHeader request;
    try {
      // Idle-wait for the next request in short slices so Stop() is never
      // blocked behind a quiet client; once the first header byte lands
      // the rest of the frame is read under one generous deadline.
      try {
        conn.RecvAll(header.data(), 1,
                     std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(kAcceptPollMs));
      } catch (const net::SocketTimeout&) {
        continue;
      }
      const net::Deadline deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      conn.RecvAll(header.data() + 1, header.size() - 1, deadline);
      request = net::DecodeFrameHeader(header.data());
      payload.resize(request.payload_size);
      conn.RecvAll(payload.data(), payload.size(), deadline);
      net::VerifyPayload(request, payload.data());
    } catch (const std::exception&) {
      // Dead peer or poisoned stream: either way this connection is done.
      return;
    }

    net::MessageType response_type = net::MessageType::kError;
    std::vector<uint8_t> response_payload;
    try {
      MutexLock lock(&worker_mu_);
      switch (request.type) {
        case net::MessageType::kCandidatesRequest: {
          const CandidateRequest req =
              net::DecodeCandidateRequest(payload.data(), payload.size());
          response_payload = net::Encode(worker_->Candidates(req));
          response_type = net::MessageType::kCandidatesResponse;
          break;
        }
        case net::MessageType::kApplyDeltaRequest: {
          const ShardUpdateRequest req =
              net::DecodeShardUpdateRequest(payload.data(), payload.size());
          response_payload = net::Encode(worker_->ApplyDelta(req));
          response_type = net::MessageType::kApplyDeltaResponse;
          break;
        }
        case net::MessageType::kGetRecordRequest: {
          const RecordId id =
              net::DecodeGetRecordRequest(payload.data(), payload.size());
          response_payload = net::Encode(worker_->GetRecord(id));
          response_type = net::MessageType::kGetRecordResponse;
          break;
        }
        case net::MessageType::kInfoRequest: {
          net::DecodeInfoRequest(payload.data(), payload.size());
          response_payload = net::Encode(worker_->Info());
          response_type = net::MessageType::kInfoResponse;
          break;
        }
        case net::MessageType::kSaveSnapshotRequest: {
          const std::string path =
              net::DecodeSaveSnapshotRequest(payload.data(), payload.size());
          net::SaveSnapshotResponse resp;
          resp.ok = worker_->SaveSnapshot(path);
          if (!resp.ok) resp.error = "snapshot save failed at " + path;
          response_payload = net::Encode(resp);
          response_type = net::MessageType::kSaveSnapshotResponse;
          break;
        }
        default: {
          // A known frame type that is not a request (a client echoing a
          // response at us) poisons the stream.
          return;
        }
      }
    } catch (const net::WireError&) {
      // Structurally valid frame, semantically unreadable payload: the
      // stream alignment is fine but the request is garbage — report it.
      net::ErrorBody err;
      err.message = "malformed request payload";
      response_payload = net::Encode(err);
      response_type = net::MessageType::kError;
    } catch (const std::exception& e) {
      net::ErrorBody err;
      err.message = e.what();
      response_payload = net::Encode(err);
      response_type = net::MessageType::kError;
    }

    try {
      const std::vector<uint8_t> frame =
          net::EncodeFrame(response_type, request.seq, response_payload);
      conn.SendAll(frame.data(), frame.size(),
                   std::chrono::steady_clock::now() + std::chrono::seconds(30));
    } catch (const std::exception&) {
      return;
    }
  }
}

}  // namespace kspr
