#include "shard/shard_worker.h"

#include <cassert>
#include <unordered_set>
#include <utility>

#include "index/bbs.h"
#include "storage/storage_engine.h"

namespace kspr {

ShardWorker::ShardWorker(size_t shard_index, const ShardMap& map,
                         Dataset slice, ShardWorkerOptions options)
    : shard_index_(shard_index),
      map_(map),
      owned_data_(std::make_unique<Dataset>(std::move(slice))),
      owned_tree_(std::make_unique<RTree>(RTree::BulkLoad(
          *owned_data_, options.leaf_capacity, options.fanout))) {
  data_ = owned_data_.get();
  tree_ = owned_tree_.get();
  engine_ = std::make_unique<QueryEngine>(data_, tree_, options.engine);
}

ShardWorker::ShardWorker(size_t shard_index, const ShardMap& map,
                         std::unique_ptr<StorageEngine> storage,
                         ShardWorkerOptions options)
    : shard_index_(shard_index), map_(map), storage_(std::move(storage)) {
  data_ = storage_->dataset();
  tree_ = storage_->tree();
  engine_ = std::make_unique<QueryEngine>(storage_.get(), options.engine);
}

ShardWorker::~ShardWorker() = default;

const std::vector<RecordId>& ShardWorker::Skyband(int k) {
  CachedBand& band = skyband_cache_[k];
  const uint64_t version = data().version();
  // A fresh entry and a stale entry look the same to this test only when
  // the dataset version is 0, i.e. the shard is empty — where the correct
  // skyband is empty as well, so serving the default-constructed entry is
  // exact.
  if (band.version != version || (band.version == 0 && version == 0)) {
    band.local_ids = KSkyband(data(), *tree_, k);
    band.version = version;
  }
  return band.local_ids;
}

CandidateResponse ShardWorker::Candidates(const CandidateRequest& request) {
  CandidateResponse response;
  response.shard_version = data().version();
  auto cached = skyband_cache_.find(request.k);
  response.from_cache =
      cached != skyband_cache_.end() &&
      cached->second.version == response.shard_version &&
      response.shard_version != 0;
  const std::vector<RecordId>& band = Skyband(request.k);
  response.candidates.reserve(band.size());
  for (RecordId local : band) {
    response.candidates.push_back(
        {map_.GlobalOf(shard_index_, local), data().Get(local)});
  }
  return response;
}

ShardUpdateResponse ShardWorker::ApplyDelta(
    const ShardUpdateRequest& request) {
  // Exactly-once apply under at-least-once delivery: the router's
  // sequenced batches (batch_seq > 0) are idempotent here. A duplicate of
  // the last applied batch — a transport retry whose first attempt did
  // land, or an injected duplicate frame — replays the cached response
  // instead of double-applying. Per-shard FIFO delivery plus the router's
  // one-outstanding-batch-per-shard discipline mean a stale seq can only
  // ever equal the last one.
  if (request.batch_seq != 0 && request.batch_seq <= last_batch_seq_) {
    return last_batch_response_;
  }
  ShardUpdateResponse response;

  // Pre-batch skybands for every k the router tracks: computed against the
  // current live set BEFORE the delta lands (cache hit when unchanged).
  std::vector<std::vector<RecordId>> pre_bands;
  pre_bands.reserve(request.skyband_ks.size());
  for (int k : request.skyband_ks) pre_bands.push_back(Skyband(k));

  UpdateBatch batch;
  batch.inserts.reserve(request.inserts.size());
  for (const ShardInsert& ins : request.inserts) {
    assert(map_.ShardOf(ins.global_id) == shard_index_);
    // The router assigns global ids monotonically, so the engine's append
    // order reproduces ShardMap's local ids exactly.
    assert(map_.LocalOf(ins.global_id) ==
           data().size() + static_cast<RecordId>(batch.inserts.size()));
    batch.inserts.push_back(ins.value);
  }
  batch.deletes.reserve(request.delete_global_ids.size());
  for (RecordId global : request.delete_global_ids) {
    assert(map_.ShardOf(global) == shard_index_);
    batch.deletes.push_back(map_.LocalOf(global));
  }

  // The PR 5 path end to end: writer-lock quiesce, tombstone + append,
  // R-tree maintenance per policy, version bump, targeted result-cache
  // sweep with restamp of provably-untouched entries.
  const UpdateResult applied = engine_->ApplyUpdates(batch);
  assert(applied.applied);
  response.shard_version = applied.version;
  response.inserts_applied = applied.inserted_ids.size();
  response.deletes_applied = applied.deletes_applied;

  // Post-batch skybands and the per-k symmetric difference. Values of
  // departed records stay addressable through their tombstoned rows.
  response.skyband_changes.reserve(request.skyband_ks.size());
  for (size_t i = 0; i < request.skyband_ks.size(); ++i) {
    SkybandChange change;
    change.k = request.skyband_ks[i];
    const std::vector<RecordId>& post = Skyband(change.k);
    std::unordered_set<RecordId> pre_set(pre_bands[i].begin(),
                                         pre_bands[i].end());
    std::unordered_set<RecordId> post_set(post.begin(), post.end());
    for (RecordId local : post) {
      if (!pre_set.contains(local)) {
        change.changed.push_back(
            {map_.GlobalOf(shard_index_, local), data().Get(local)});
      }
    }
    for (RecordId local : pre_bands[i]) {
      if (!post_set.contains(local)) {
        change.changed.push_back(
            {map_.GlobalOf(shard_index_, local), data().Get(local)});
      }
    }
    response.skyband_changes.push_back(std::move(change));
  }
  if (request.batch_seq != 0) {
    last_batch_seq_ = request.batch_seq;
    last_batch_response_ = response;
  }
  return response;
}

RecordResponse ShardWorker::GetRecord(RecordId global_id) const {
  RecordResponse response;
  if (global_id < 0 || map_.ShardOf(global_id) != shard_index_) {
    return response;
  }
  const RecordId local = map_.LocalOf(global_id);
  if (local >= data().size()) return response;
  response.known = true;
  response.live = data().IsLive(local);
  response.value = data().Get(local);
  return response;
}

ShardInfo ShardWorker::Info() const {
  ShardInfo info;
  info.shard_version = data().version();
  info.records_total = data().size();
  info.records_live = data().num_live();
  return info;
}

bool ShardWorker::SaveSnapshot(const std::string& path) {
  // A failed save (unwritable path, full disk) must degrade to a reported
  // per-shard failure, not tear down the serving worker — and over a
  // socket an exception would otherwise kill the whole connection.
  try {
    if (storage_ != nullptr) {
      // Resave materialises a still-hollow tree before serialising.
      storage_->Resave(path);
    } else {
      StorageEngine::Save(path, *data_, *tree_);
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace kspr
