// The wire boundary between the ShardRouter front-end and its shard
// workers.
//
// ShardTransport is deliberately NARROW and message-shaped: every method
// takes a plain-data request, returns a std::future of a plain-data
// response, and carries no pointers into router or worker state — the
// requests and responses below are exactly what a socket transport would
// serialise. The only implementation today is LocalShardTransport
// (local_transport.h), which runs each shard as an in-process thread
// group behind a local queue; a remote transport is a drop-in for this
// interface.
//
// Thread-safety contract: every method may be called concurrently from
// any number of router threads for any mix of shards. Implementations
// must serialise the requests DELIVERED TO ONE SHARD (LocalShardTransport
// does this with a per-shard FIFO queue drained by that shard's own
// thread); requests to different shards proceed in parallel. The router
// relies on per-shard FIFO order for update/read consistency: an
// ApplyDelta followed by a Candidates call on the same shard must observe
// the delta.

#ifndef KSPR_SHARD_SHARD_TRANSPORT_H_
#define KSPR_SHARD_SHARD_TRANSPORT_H_

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/vec.h"
#include "core/candidates.h"

namespace kspr {

/// Scatter side of a query: ask one shard for its local k-skyband.
struct CandidateRequest {
  int k = 0;
};

/// A shard's candidate extraction result. `candidates` is the shard's
/// local k-skyband as (global id, value) pairs — value travels with the
/// id because the router holds no record storage.
struct CandidateResponse {
  uint64_t shard_version = 0;   // shard dataset version answered under
  bool from_cache = false;      // served from the shard's skyband cache
  std::vector<Candidate> candidates;
};

/// One record routed to a shard by ShardRouter::ApplyUpdates. The global
/// id is assigned by the router; ShardMap fixes the local id.
struct ShardInsert {
  RecordId global_id = kInvalidRecord;
  Vec value;
};

/// A shard's slice of an update batch, plus the set of skyband cardinals
/// (distinct subscriber / cached-query k values) the shard must report
/// skyband changes for.
struct ShardUpdateRequest {
  /// Router-assigned, per-shard monotonically increasing batch number
  /// (starting at 1; 0 means "unsequenced — always apply"). Workers apply
  /// a given batch_seq at most once and replay the cached response on a
  /// duplicate, which is what makes transport-level retries of ApplyDelta
  /// safe (exactly-once apply under at-least-once delivery).
  uint64_t batch_seq = 0;
  std::vector<ShardInsert> inserts;
  std::vector<RecordId> delete_global_ids;
  std::vector<int> skyband_ks;
};

/// Records that entered or left the shard's k-skyband because of one
/// update batch — the router's classification currency: a cached result
/// or subscriber is provably untouched by the batch iff its focal weakly
/// dominates every changed record at its k (core/candidates.h).
struct SkybandChange {
  int k = 0;
  std::vector<Candidate> changed;  // symmetric difference, entered + left
};

struct ShardUpdateResponse {
  uint64_t shard_version = 0;      // post-batch shard dataset version
  size_t inserts_applied = 0;
  size_t deletes_applied = 0;      // ids that were live on this shard
  std::vector<SkybandChange> skyband_changes;  // aligned with skyband_ks
};

/// Point lookup of one record by global id (focal resolution).
struct RecordResponse {
  bool known = false;  // global id maps to a slot on this shard
  bool live = false;   // known and not tombstoned
  Vec value;           // valid when known (tombstoned values included)
};

/// Shard liveness/version summary (CLI display, tests, save paths).
struct ShardInfo {
  uint64_t shard_version = 0;
  RecordId records_total = 0;  // slots including tombstones
  RecordId records_live = 0;
  /// Router-side only (never on the wire): false when the shard could not
  /// be reached and the counters above are meaningless zeros.
  bool reachable = true;
};

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  virtual size_t num_shards() const = 0;

  /// Local k-skyband of shard `shard` (served from its skyband cache when
  /// the shard version is unchanged).
  virtual std::future<CandidateResponse> Candidates(
      size_t shard, CandidateRequest request) = 0;

  /// Applies one shard-slice of an update batch through the shard's
  /// engine (PR 5 quiesce/restamp path) and reports per-k skyband
  /// changes.
  virtual std::future<ShardUpdateResponse> ApplyDelta(
      size_t shard, ShardUpdateRequest request) = 0;

  /// Resolves one global record id on its owning shard.
  virtual std::future<RecordResponse> GetRecord(size_t shard,
                                                RecordId global_id) = 0;

  virtual std::future<ShardInfo> Info(size_t shard) = 0;

  /// Persists the shard's current (dataset, R-tree) as a paged snapshot
  /// at `path` (storage/shard_paths.h names the per-shard files).
  virtual std::future<bool> SaveSnapshot(size_t shard, std::string path) = 0;
};

}  // namespace kspr

#endif  // KSPR_SHARD_SHARD_TRANSPORT_H_
