// A TCP frame server exposing one ShardWorker to SocketShardTransport.
//
// One ShardServer wraps one worker: an accept loop hands each connection
// to its own handler thread; handlers read request frames, dispatch to
// the worker under a per-worker mutex (the socket equivalent of
// LocalShardTransport's per-shard FIFO queue — the worker itself is not
// internally synchronised), and write back a response frame echoing the
// request's sequence number.
//
// Failure semantics, per connection:
//   * a malformed frame (bad magic / version / checksum / truncated or
//     trailing payload) poisons the byte stream — the handler drops the
//     connection; the client reconnects and retries.
//   * a worker exception is answered with a kError frame carrying the
//     exception text; the connection stays up (the request was parsed, so
//     the stream is still aligned).
//   * duplicate ApplyDelta deliveries after a retry are absorbed by the
//     worker's batch_seq ledger (exactly-once apply), so the server can
//     stay dumb about retries.

#ifndef KSPR_SHARD_SHARD_SERVER_H_
#define KSPR_SHARD_SHARD_SERVER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/socket.h"
#include "shard/shard_worker.h"

namespace kspr {

class ShardServer {
 public:
  /// Binds an ephemeral loopback port and starts serving `worker`
  /// immediately. The worker must outlive the server.
  explicit ShardServer(ShardWorker* worker);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, closes the listener and joins every handler.
  /// Idempotent; also run by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(net::Socket conn);

  /// Serialises worker access across handler threads (one live client
  /// connection is the common case, but reconnects can overlap briefly).
  Mutex worker_mu_;
  ShardWorker* worker_ KSPR_PT_GUARDED_BY(worker_mu_);
  net::Listener listener_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  Mutex handlers_mu_;
  std::vector<std::thread> handlers_ KSPR_GUARDED_BY(handlers_mu_);
};

}  // namespace kspr

#endif  // KSPR_SHARD_SHARD_SERVER_H_
