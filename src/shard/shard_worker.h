// One shard of the scatter-gather serving tier: a Dataset slice, its own
// R-tree, a per-shard QueryEngine (result cache + the PR 5
// quiesce/restamp update path) and a skyband candidate cache.
//
// A ShardWorker owns the records of one ShardMap residue class. Its two
// serving operations are
//
//   * Candidates(k)  — the local k-skyband of the slice, as (global id,
//     value) pairs, served from a per-k cache keyed on the shard dataset
//     version, and
//   * ApplyDelta(..) — one shard-slice of an update batch, applied
//     through the embedded QueryEngine::ApplyUpdates (the same writer-
//     lock quiesce, R-tree maintenance and version-stamped cache
//     restamp every single-engine deployment uses), which also reports,
//     per requested k, the records that entered or left the local
//     k-skyband — the router's classification currency.
//
// Thread-safety / locking contract (mirrors engine/query_engine.h):
// ShardWorker methods are NOT internally synchronised against each other;
// the transport in front of the worker must serialise them (LocalShard-
// Transport runs every method of one worker on that shard's single queue
// thread, which also gives cross-method happens-before). The embedded
// QueryEngine provides its own internal locking, so a future transport
// that fans shard-local *queries* out to the engine's pool may do so
// concurrently with Candidates — but ApplyDelta must stay exclusive per
// shard, which a FIFO queue gives for free.

#ifndef KSPR_SHARD_SHARD_WORKER_H_
#define KSPR_SHARD_SHARD_WORKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/shard_map.h"
#include "engine/query_engine.h"
#include "index/rtree.h"
#include "shard/shard_transport.h"

namespace kspr {

class StorageEngine;  // storage/storage_engine.h

struct ShardWorkerOptions {
  int leaf_capacity = 64;  // R-tree geometry of the shard's own tree
  int fanout = 64;
  /// Forwarded to the embedded QueryEngine (update policy, cache size).
  EngineOptions engine;
};

class ShardWorker {
 public:
  /// In-memory shard: adopts `slice` (local ids must already follow
  /// `map`'s residue-class layout — ShardRouter builds slices that way)
  /// and bulk-loads the shard R-tree over its live records.
  ShardWorker(size_t shard_index, const ShardMap& map, Dataset slice,
              ShardWorkerOptions options);

  /// Disk-backed shard: serves from an opened per-shard snapshot; node
  /// pages fault through the storage buffer pool until the first update
  /// batch materialises the tree (QueryEngine's storage constructor).
  ShardWorker(size_t shard_index, const ShardMap& map,
              std::unique_ptr<StorageEngine> storage,
              ShardWorkerOptions options);

  /// Out of line: StorageEngine is only forward-declared here.
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  size_t shard_index() const { return shard_index_; }

  CandidateResponse Candidates(const CandidateRequest& request);
  ShardUpdateResponse ApplyDelta(const ShardUpdateRequest& request);
  RecordResponse GetRecord(RecordId global_id) const;
  ShardInfo Info() const;

  /// Persists the current (dataset, tree) as a paged snapshot. A still-
  /// hollow disk-backed shard materialises its tree first.
  bool SaveSnapshot(const std::string& path);

 private:
  /// Local k-skyband at the current version, through the cache.
  const std::vector<RecordId>& Skyband(int k);

  const Dataset& data() const { return *data_; }

  size_t shard_index_;
  ShardMap map_;
  /// In-memory ownership (null for the disk-backed constructor, where the
  /// StorageEngine owns the pair).
  std::unique_ptr<Dataset> owned_data_;
  std::unique_ptr<RTree> owned_tree_;
  std::unique_ptr<StorageEngine> storage_;
  Dataset* data_ = nullptr;
  RTree* tree_ = nullptr;
  /// The per-shard serving engine: result cache + ApplyUpdates. Created
  /// after the data/tree members it points into.
  std::unique_ptr<QueryEngine> engine_;

  struct CachedBand {
    uint64_t version = 0;
    std::vector<RecordId> local_ids;  // BBS pop order
  };
  std::map<int, CachedBand> skyband_cache_;  // keyed by k

  /// Exactly-once update ledger: last applied router batch_seq and its
  /// response, replayed verbatim on duplicate delivery (shard_transport.h
  /// documents the sequencing contract).
  uint64_t last_batch_seq_ = 0;
  ShardUpdateResponse last_batch_response_;
};

}  // namespace kspr

#endif  // KSPR_SHARD_SHARD_WORKER_H_
