// Scatter-gather front-end of the sharded serving tier.
//
// A ShardRouter partitions the live record set across N shard workers
// (common/shard_map.h fixes the global<->(shard, local) id mapping in
// closed form) and serves the same operations a single QueryEngine does —
// queries, update batches, standing subscriptions — against the union of
// the shards:
//
//  * Query:   scatter CandidateRequest(k) to every shard; each shard
//    answers its LOCAL k-skyband in parallel (from its per-k cache when
//    its slice is unchanged). The router merges the per-shard skybands
//    and runs the canonical candidate pipeline of core/candidates.h —
//    reduce to the GLOBAL k-skyband, drop focal-covered records, sort by
//    global id, solve the cell-tree arrangement over the mini dataset.
//    The distributed-skyband theorem (candidates.h) makes the candidate
//    set — and therefore the returned regions AND KsprStats — independent
//    of the shard count: results are bitwise-identical across N = 1, 2,
//    4, 8, ... (gated by tests/test_sharding.cc and bench_sharding).
//  * ApplyUpdates: the batch is split into per-shard versioned deltas;
//    each shard applies its slice through its embedded QueryEngine (the
//    PR 5 writer-lock quiesce + restamp path) and reports, for every k
//    the router is serving, the records that entered or left its local
//    k-skyband. The merged symmetric difference drives the router-level
//    classification: a cached result or subscriber is provably untouched
//    iff its focal weakly dominates every changed record at its k —
//    untouched cache entries are restamped to the new router version
//    (engine/result_cache.h), untouched subscribers get no event.
//  * Subscribe: standing queries in the engine/subscription.h event
//    vocabulary (kInitial/kRebuild/kFocalGone); touched subscribers are
//    recomputed through the same scatter-gather pipeline and receive a
//    splice diff (core/region.h DiffResults) only when the result
//    actually changed. Unlike QueryEngine::Subscribe (which maintains an
//    amortized CTA context and is therefore kCta-only), the router
//    recomputes from scratch and supports every algorithm.
//
// Shards are reached exclusively through the narrow ShardTransport
// interface; the in-process LocalShardTransport (per-shard thread + FIFO
// queue) is the only implementation today and a socket transport is a
// drop-in.
//
// Thread-safety: Query may be called concurrently from any thread.
// ApplyUpdates/Subscribe/Unsubscribe take the router's writer lock (the
// same shared_mutex quiesce discipline as QueryEngine). Subscription
// callbacks run under that writer lock — keep them quick and never call
// back into the router.

#ifndef KSPR_SHARD_SHARD_ROUTER_H_
#define KSPR_SHARD_SHARD_ROUTER_H_

#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/shard_map.h"
#include "core/candidates.h"
#include "core/options.h"
#include "core/region.h"
#include "engine/result_cache.h"
#include "engine/subscription.h"
#include "shard/shard_transport.h"
#include "shard/shard_worker.h"

namespace kspr {

struct RouterOptions {
  size_t num_shards = 1;

  /// Per-shard worker configuration (shard R-tree geometry + embedded
  /// engine). CreateLocal defaults the engine to one worker thread per
  /// shard — the transport already runs shards in parallel.
  ShardWorkerOptions worker;

  /// Front-end result cache entries (0 disables).
  size_t cache_capacity = 1024;

  /// R-tree geometry of the mini candidate dataset the arrangement runs
  /// over. Part of the bitwise contract: results are shard-count-
  /// independent only when these are held constant across deployments.
  int solve_leaf_capacity = 64;
  int solve_fanout = 64;
};

/// N-dependent scatter telemetry for one query. Deliberately SEPARATE
/// from KsprResult/KsprStats (which stay bitwise-identical across shard
/// counts): everything here legitimately varies with N.
struct ShardQueryStats {
  size_t shards_queried = 0;
  size_t shard_cache_hits = 0;    // shards that served a cached skyband
  size_t candidates_merged = 0;   // union of per-shard skybands
  size_t candidates_solved = 0;   // after global reduce + focal filter
};

struct RouterQueryResult {
  /// Immutable, possibly shared with the router cache. The regions and
  /// stats inside are those of the canonical candidate-pipeline run —
  /// bitwise-identical for every shard count.
  std::shared_ptr<const KsprResult> result;
  bool cache_hit = false;
  /// False when the requested focal record is unknown or tombstoned;
  /// `result` is then an empty placeholder.
  bool focal_live = true;
  ShardQueryStats scatter;
};

/// A batch of global mutations: values to insert (the router assigns
/// global ids) and global record ids to delete.
struct RouterUpdateBatch {
  std::vector<Vec> inserts;
  std::vector<RecordId> deletes;
};

struct RouterUpdateResult {
  /// Router version after the batch. A batch with no effective change
  /// (all deletes already dead, no inserts) does NOT bump the version.
  uint64_t version = 0;
  std::vector<RecordId> inserted_global_ids;  // aligned with inserts
  size_t deletes_applied = 0;
  size_t shards_touched = 0;
  size_t cache_dropped = 0;
  size_t cache_retained = 0;
  size_t subscribers_examined = 0;
  size_t subscribers_irrelevant = 0;  // proven untouched, nothing emitted
  size_t subscribers_notified = 0;    // diff events delivered
  size_t subscribers_terminated = 0;  // focal deleted by this batch
};

class ShardRouter {
 public:
  /// Builds the in-process deployment: partitions `data` across
  /// `options.num_shards` workers by ShardMap residue class (tombstones
  /// preserved so global ids stay stable) and stands up a
  /// LocalShardTransport over them.
  static std::unique_ptr<ShardRouter> CreateLocal(const Dataset& data,
                                                  RouterOptions options);

  /// Fronts an existing transport (e.g. workers opened from per-shard
  /// disk snapshots). `next_global_id` must be one past the largest
  /// global id any shard holds; `transport->num_shards()` must equal
  /// options.num_shards.
  ShardRouter(std::unique_ptr<ShardTransport> transport,
              RecordId next_global_id, RouterOptions options);

  ~ShardRouter() = default;
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  size_t num_shards() const { return map_.num_shards(); }
  const ShardMap& shard_map() const { return map_; }
  uint64_t version() const;
  size_t cache_size() const { return cache_.size(); }
  size_t num_subscriptions() const;

  /// One past the largest global id ever assigned.
  RecordId next_global_id() const;

  /// kSPR query for dataset record `focal_id` (global id).
  RouterQueryResult Query(RecordId focal_id, const KsprOptions& options);

  /// kSPR query for a hypothetical focal vector (not part of the data).
  RouterQueryResult Query(const Vec& focal, const KsprOptions& options);

  /// Applies a global mutation batch: routes per-shard deltas, gathers
  /// the merged per-k skyband symmetric difference, sweeps the front-end
  /// cache (drop vs restamp) and classifies every subscriber.
  RouterUpdateResult ApplyUpdates(const RouterUpdateBatch& batch);

  /// Registers global record `focal_id` as a standing query; the kInitial
  /// event fires before this returns. Any algorithm is accepted. Returns
  /// kInvalidSubscription when the focal is unknown or dead.
  SubscriptionId Subscribe(RecordId focal_id, const KsprOptions& options,
                           SubscriptionCallback callback);

  /// Cancels a standing query (no terminal event). False for unknown ids
  /// and for subscriptions already terminated by a focal deletion.
  bool Unsubscribe(SubscriptionId id);

  /// Per-shard liveness/version summaries, in shard order.
  std::vector<ShardInfo> Info();

  /// Persists every shard as its own paged snapshot under
  /// storage/shard_paths.h naming. Returns the per-shard paths.
  std::vector<std::string> SaveSnapshots(const std::string& base_path);

  /// Splits `data` into per-shard slices by residue class (exposed for
  /// tests and for building disk-backed deployments shard by shard).
  static std::vector<Dataset> PartitionDataset(const Dataset& data,
                                               const ShardMap& map);

 private:
  struct RouterSubscription {
    SubscriptionId id = kInvalidSubscription;
    Vec focal;
    RecordId focal_id = kInvalidRecord;
    KsprOptions options;
    KsprResult current;  // last emitted state (diff-replay target)
    SubscriptionCallback callback;
  };

  /// The scatter-gather pipeline: per-shard skybands -> merge -> global
  /// reduce -> focal filter -> sort -> mini arrangement. Callers hold
  /// update_mu_ (shared or unique).
  std::shared_ptr<const KsprResult> ComputeLocked(const Vec& focal,
                                                  RecordId focal_id,
                                                  const KsprOptions& options,
                                                  ShardQueryStats* scatter);

  RouterQueryResult QueryLocked(const Vec& focal, RecordId focal_id,
                                const KsprOptions& options);

  /// Resolves a global id on its owning shard. Callers hold update_mu_.
  RecordResponse ResolveRecord(RecordId global_id);

  ShardMap map_;
  RouterOptions options_;
  std::unique_ptr<ShardTransport> transport_;

  /// Readers (Query) hold shared; ApplyUpdates/Subscribe hold unique.
  mutable std::shared_mutex update_mu_;

  RecordId next_global_ = 0;          // guarded by update_mu_
  uint64_t router_version_ = 0;       // guarded by update_mu_

  /// Front-end result cache, keyed on (focal, options, router_version_).
  /// Internally locked; entries restamped across no-op-for-them batches.
  ResultCache cache_;

  /// Every k any cache entry or subscriber has used — the set of skyband
  /// cardinalities update batches must report changes for. Grows
  /// monotonically (a stale k only costs a little extra per-shard diff
  /// work). Guarded by ks_mu_ (Query records ks under the shared lock).
  mutable std::mutex ks_mu_;
  std::set<int> active_ks_;

  mutable std::mutex subs_mu_;
  SubscriptionId next_subscription_ = 0;
  std::vector<std::unique_ptr<RouterSubscription>> subs_;
};

}  // namespace kspr

#endif  // KSPR_SHARD_SHARD_ROUTER_H_
