// Scatter-gather front-end of the sharded serving tier.
//
// A ShardRouter partitions the live record set across N shard workers
// (common/shard_map.h fixes the global<->(shard, local) id mapping in
// closed form) and serves the same operations a single QueryEngine does —
// queries, update batches, standing subscriptions — against the union of
// the shards:
//
//  * Query:   scatter CandidateRequest(k) to every shard; each shard
//    answers its LOCAL k-skyband in parallel (from its per-k cache when
//    its slice is unchanged). The router merges the per-shard skybands
//    and runs the canonical candidate pipeline of core/candidates.h —
//    reduce to the GLOBAL k-skyband, drop focal-covered records, sort by
//    global id, solve the cell-tree arrangement over the mini dataset.
//    The distributed-skyband theorem (candidates.h) makes the candidate
//    set — and therefore the returned regions AND KsprStats — independent
//    of the shard count: results are bitwise-identical across N = 1, 2,
//    4, 8, ... (gated by tests/test_sharding.cc and bench_sharding).
//  * ApplyUpdates: the batch is split into per-shard versioned deltas;
//    each shard applies its slice through its embedded QueryEngine (the
//    PR 5 writer-lock quiesce + restamp path) and reports, for every k
//    the router is serving, the records that entered or left its local
//    k-skyband. The merged symmetric difference drives the router-level
//    classification: a cached result or subscriber is provably untouched
//    iff its focal weakly dominates every changed record at its k —
//    untouched cache entries are restamped to the new router version
//    (engine/result_cache.h), untouched subscribers get no event.
//  * Subscribe: standing queries in the engine/subscription.h event
//    vocabulary (kInitial/kRebuild/kFocalGone); touched subscribers are
//    recomputed through the same scatter-gather pipeline and receive a
//    splice diff (core/region.h DiffResults) only when the result
//    actually changed. Unlike QueryEngine::Subscribe (which maintains an
//    amortized CTA context and is therefore kCta-only), the router
//    recomputes from scratch and supports every algorithm.
//
// Shards are reached exclusively through the narrow ShardTransport
// interface; the in-process LocalShardTransport (per-shard thread + FIFO
// queue) is the only implementation today and a socket transport is a
// drop-in.
//
// Thread-safety: Query may be called concurrently from any thread.
// ApplyUpdates/Subscribe/Unsubscribe take the router's writer lock (the
// same quiesce discipline as QueryEngine). Subscription callbacks run
// under that writer lock — keep them quick and never call back into the
// router.

#ifndef KSPR_SHARD_SHARD_ROUTER_H_
#define KSPR_SHARD_SHARD_ROUTER_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/sync.h"
#include "common/shard_map.h"
#include "core/candidates.h"
#include "core/options.h"
#include "core/region.h"
#include "engine/engine_stats.h"
#include "engine/result_cache.h"
#include "engine/subscription.h"
#include "net/transport_error.h"
#include "shard/shard_transport.h"
#include "shard/shard_worker.h"
#include "shard/socket_transport.h"

namespace kspr {

class ShardServer;  // shard/shard_server.h

/// Which ShardTransport implementation ShardRouter::Create stands up.
enum class TransportKind { kLocal, kSocket };

/// Outcome class of a router operation under the failure model.
///   kOk           every shard answered
///   kPartial      some shards missing; the result covers the rest
///                 (queries: only with RouterOptions::allow_partial;
///                 updates: failed shard slices are queued for replay)
///   kUnavailable  shards missing and partial serving not allowed — the
///                 result is an empty placeholder
enum class RouterStatus : uint8_t { kOk, kPartial, kUnavailable };

const char* ToString(RouterStatus status);

struct RouterOptions {
  size_t num_shards = 1;

  /// Per-shard worker configuration (shard R-tree geometry + embedded
  /// engine). CreateLocal defaults the engine to one worker thread per
  /// shard — the transport already runs shards in parallel.
  ShardWorkerOptions worker;

  /// Front-end result cache entries (0 disables).
  size_t cache_capacity = 1024;

  /// R-tree geometry of the mini candidate dataset the arrangement runs
  /// over. Part of the bitwise contract: results are shard-count-
  /// independent only when these are held constant across deployments.
  int solve_leaf_capacity = 64;
  int solve_fanout = 64;

  /// Transport Create() stands up. kSocket starts one ShardServer per
  /// worker on an ephemeral loopback port and a SocketShardTransport over
  /// them — same data flow, real frames on real sockets.
  TransportKind transport = TransportKind::kLocal;

  /// Router-side wait budget per shard response, in ms; 0 waits forever.
  /// Applies to EVERY transport — even the local one honors deadlines
  /// through the AwaitShard helper. For sockets, set it at or above the
  /// transport's full retry budget or the router will give up while the
  /// supervisor is still retrying.
  int shard_timeout_ms = 0;

  /// Graceful degradation policy: false (default) fails a query fast with
  /// RouterStatus::kUnavailable the moment a shard is missing; true
  /// returns the reachable shards' merged result flagged kPartial with
  /// the missing shard set. Partial results are never cached.
  bool allow_partial = false;

  /// Socket supervisor tuning (Create with kSocket); `socket.stats` is
  /// defaulted to `stats` when unset.
  SocketTransportOptions socket;

  /// Fault-tolerance counters shared by the router and its transport;
  /// created by the constructor when null.
  std::shared_ptr<TransportStats> stats;
};

/// N-dependent scatter telemetry for one query. Deliberately SEPARATE
/// from KsprResult/KsprStats (which stay bitwise-identical across shard
/// counts): everything here legitimately varies with N.
struct ShardQueryStats {
  size_t shards_queried = 0;
  size_t shard_cache_hits = 0;    // shards that served a cached skyband
  size_t candidates_merged = 0;   // union of per-shard skybands
  size_t candidates_solved = 0;   // after global reduce + focal filter
};

struct RouterQueryResult {
  /// Immutable, possibly shared with the router cache. The regions and
  /// stats inside are those of the canonical candidate-pipeline run —
  /// bitwise-identical for every shard count.
  std::shared_ptr<const KsprResult> result;
  bool cache_hit = false;
  /// False when the requested focal record is unknown or tombstoned;
  /// `result` is then an empty placeholder.
  bool focal_live = true;
  ShardQueryStats scatter;
  /// Failure-model verdict. kOk results are complete and cacheable;
  /// kPartial results (opt-in) cover every shard EXCEPT `missing_shards`;
  /// kUnavailable results are empty placeholders.
  RouterStatus status = RouterStatus::kOk;
  std::vector<size_t> missing_shards;
  /// First shard failure, human-readable; empty when status is kOk.
  std::string error;
};

/// A batch of global mutations: values to insert (the router assigns
/// global ids) and global record ids to delete.
struct RouterUpdateBatch {
  std::vector<Vec> inserts;
  std::vector<RecordId> deletes;
};

struct RouterUpdateResult {
  /// Router version after the batch. A batch with no effective change
  /// (all deletes already dead, no inserts) does NOT bump the version.
  uint64_t version = 0;
  std::vector<RecordId> inserted_global_ids;  // aligned with inserts
  size_t deletes_applied = 0;
  size_t shards_touched = 0;
  size_t cache_dropped = 0;
  size_t cache_retained = 0;
  size_t subscribers_examined = 0;
  size_t subscribers_irrelevant = 0;  // proven untouched, nothing emitted
  size_t subscribers_notified = 0;    // diff events delivered
  size_t subscribers_terminated = 0;  // focal deleted by this batch
  /// kOk: every touched shard applied its slice. kPartial: the slices for
  /// `failed_shards` are queued and will be replayed (in order, with their
  /// original batch_seq) at the start of the next ApplyUpdates call; until
  /// then those shards are excluded from query scatters.
  RouterStatus status = RouterStatus::kOk;
  std::vector<size_t> failed_shards;
  size_t batches_replayed = 0;  // backlog batches that landed this call
  std::string error;
};

/// Per-shard outcome of ShardRouter::SaveSnapshots. `paths` always lists
/// every shard's target path; `failed_shards`/`errors` (aligned) name the
/// shards whose save did not complete.
struct SnapshotSaveResult {
  bool ok = true;
  std::vector<std::string> paths;
  std::vector<size_t> failed_shards;
  std::vector<std::string> errors;
};

class ShardRouter {
 public:
  /// Builds the in-process deployment: partitions `data` across
  /// `options.num_shards` workers by ShardMap residue class (tombstones
  /// preserved so global ids stay stable) and stands up a
  /// LocalShardTransport over them.
  static std::unique_ptr<ShardRouter> CreateLocal(const Dataset& data,
                                                  RouterOptions options);

  /// Transport-registry factory: builds the deployment selected by
  /// `options.transport`. kLocal is CreateLocal; kSocket partitions the
  /// same way, then runs every worker behind its own ShardServer on an
  /// ephemeral loopback port with a SocketShardTransport in front — the
  /// router owns servers and workers, so teardown order is safe.
  static std::unique_ptr<ShardRouter> Create(const Dataset& data,
                                             RouterOptions options);

  /// Fronts an existing transport (e.g. workers opened from per-shard
  /// disk snapshots). `next_global_id` must be one past the largest
  /// global id any shard holds; `transport->num_shards()` must equal
  /// options.num_shards.
  ShardRouter(std::unique_ptr<ShardTransport> transport,
              RecordId next_global_id, RouterOptions options);

  /// Out of line: tears the transport down before any owned servers and
  /// workers (ShardServer is only forward-declared here).
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  size_t num_shards() const { return map_.num_shards(); }
  const ShardMap& shard_map() const { return map_; }
  uint64_t version() const;
  size_t cache_size() const { return cache_.size(); }
  size_t num_subscriptions() const;

  /// One past the largest global id ever assigned.
  RecordId next_global_id() const;

  /// Router-level serving state of one shard: kUp after a clean response,
  /// kDegraded while update batches are queued for replay, kDown after a
  /// failure that exhausted the transport's budget.
  ShardHealth shard_health(size_t shard) const;
  std::vector<ShardHealth> ShardHealths() const;

  /// Shared fault-tolerance counters (never null after construction).
  const std::shared_ptr<TransportStats>& transport_stats() const {
    return options_.stats;
  }

  /// kSPR query for dataset record `focal_id` (global id).
  RouterQueryResult Query(RecordId focal_id, const KsprOptions& options);

  /// kSPR query for a hypothetical focal vector (not part of the data).
  RouterQueryResult Query(const Vec& focal, const KsprOptions& options);

  /// Applies a global mutation batch: routes per-shard deltas, gathers
  /// the merged per-k skyband symmetric difference, sweeps the front-end
  /// cache (drop vs restamp) and classifies every subscriber.
  RouterUpdateResult ApplyUpdates(const RouterUpdateBatch& batch);

  /// Registers global record `focal_id` as a standing query; the kInitial
  /// event fires before this returns. Any algorithm is accepted. Returns
  /// kInvalidSubscription when the focal is unknown or dead.
  /// REENTRANCY: `callback` runs under the router's writer lock — keep it
  /// quick and never call back into the router from it.
  SubscriptionId Subscribe(RecordId focal_id, const KsprOptions& options,
                           SubscriptionCallback callback);

  /// Cancels a standing query (no terminal event). False for unknown ids
  /// and for subscriptions already terminated by a focal deletion.
  bool Unsubscribe(SubscriptionId id);

  /// Per-shard liveness/version summaries, in shard order.
  std::vector<ShardInfo> Info();

  /// Persists every shard as its own paged snapshot under
  /// storage/shard_paths.h naming. Per-shard failures are reported, not
  /// swallowed: check `.ok` before trusting the snapshot set.
  SnapshotSaveResult SaveSnapshots(const std::string& base_path);

  /// Splits `data` into per-shard slices by residue class (exposed for
  /// tests and for building disk-backed deployments shard by shard).
  static std::vector<Dataset> PartitionDataset(const Dataset& data,
                                               const ShardMap& map);

 private:
  struct RouterSubscription {
    SubscriptionId id = kInvalidSubscription;
    Vec focal;
    RecordId focal_id = kInvalidRecord;
    KsprOptions options;
    KsprResult current;  // last emitted state (diff-replay target)
    SubscriptionCallback callback;
  };

  /// Shards a scatter could not cover: excluded up front (replay backlog
  /// pending) or failed after the transport's full retry budget.
  struct ScatterFailure {
    std::vector<size_t> missing_shards;
    std::string error;  // first failure, human-readable
  };

  /// The scatter-gather pipeline: per-shard skybands -> merge -> global
  /// reduce -> focal filter -> sort -> mini arrangement. Shard failures
  /// land in `failure`; returns null when shards are missing and partial
  /// serving is off.
  std::shared_ptr<const KsprResult> ComputeLocked(
      const Vec& focal, RecordId focal_id, const KsprOptions& options,
      ShardQueryStats* scatter, ScatterFailure* failure)
      KSPR_REQUIRES_SHARED(update_mu_);

  RouterQueryResult QueryLocked(const Vec& focal, RecordId focal_id,
                                const KsprOptions& options)
      KSPR_REQUIRES_SHARED(update_mu_);

  /// Resolves a global id on its owning shard. Throws TransportError when
  /// the shard is unreachable or serving stale state (pending replay).
  RecordResponse ResolveRecord(RecordId global_id)
      KSPR_REQUIRES_SHARED(update_mu_);

  /// Deadline-aware future wait: every transport response funnels through
  /// here so even LocalShardTransport honors shard_timeout_ms. Converts
  /// any non-transport exception (a worker throw surfacing through a
  /// local future) into TransportError{kRemote}.
  template <typename T>
  T AwaitShard(std::future<T>& future, size_t shard);

  void SetHealth(size_t shard, ShardHealth health);

  ShardMap map_;
  RouterOptions options_;
  /// Socket deployments (Create with kSocket): the router owns the
  /// worker + server pairs. Declared BEFORE transport_ so the client
  /// transport (and its supervisor threads) is destroyed first.
  std::vector<std::unique_ptr<ShardWorker>> owned_workers_;
  std::vector<std::unique_ptr<ShardServer>> owned_servers_;
  std::unique_ptr<ShardTransport> transport_;

  /// Readers (Query) hold shared; ApplyUpdates/Subscribe hold unique.
  mutable SharedMutex update_mu_;

  RecordId next_global_ KSPR_GUARDED_BY(update_mu_) = 0;
  uint64_t router_version_ KSPR_GUARDED_BY(update_mu_) = 0;

  /// Update slices that failed after the transport's retry budget, in
  /// arrival order with their original batch_seq — replayed at the start
  /// of the next ApplyUpdates. A shard with a backlog serves stale state
  /// and is excluded from query scatters (queries only read emptiness,
  /// under the shared lock).
  std::vector<std::deque<ShardUpdateRequest>> pending_replay_
      KSPR_GUARDED_BY(update_mu_);
  /// Next ApplyDelta sequence per shard, starting at 1 (0 = unsequenced).
  std::vector<uint64_t> next_batch_seq_ KSPR_GUARDED_BY(update_mu_);
  /// Set when a failed batch forced a blind cache drop; the next fully
  /// successful update sweep recomputes EVERY subscriber (the untouched
  /// proof needs the failed shards' skyband diffs, which are gone).
  bool subs_full_sweep_ KSPR_GUARDED_BY(update_mu_) = false;

  mutable Mutex health_mu_;
  std::vector<ShardHealth> health_ KSPR_GUARDED_BY(health_mu_);

  /// Front-end result cache, keyed on (focal, options, router_version_).
  /// Internally locked; entries restamped across no-op-for-them batches.
  ResultCache cache_;

  /// Every k any cache entry or subscriber has used — the set of skyband
  /// cardinalities update batches must report changes for. Grows
  /// monotonically (a stale k only costs a little extra per-shard diff
  /// work); it has its own mutex because Query records ks while holding
  /// update_mu_ only shared.
  mutable Mutex ks_mu_;
  std::set<int> active_ks_ KSPR_GUARDED_BY(ks_mu_);

  mutable Mutex subs_mu_;
  SubscriptionId next_subscription_ KSPR_GUARDED_BY(subs_mu_) = 0;
  std::vector<std::unique_ptr<RouterSubscription>> subs_
      KSPR_GUARDED_BY(subs_mu_);
};

}  // namespace kspr

#endif  // KSPR_SHARD_SHARD_ROUTER_H_
