// In-process ShardTransport: each shard is a thread group behind a local
// FIFO queue.
//
// LocalShardTransport owns N ShardWorkers and N queue threads, one per
// shard. Every transport call enqueues a closure on the target shard's
// queue and returns a future; the shard's thread drains its queue in FIFO
// order, so all operations delivered to one shard are serialised with
// happens-before between consecutive operations (the update/read
// consistency the router depends on: a Candidates call enqueued after an
// ApplyDelta observes the post-delta shard). Different shards run their
// queues concurrently — a scatter to all shards executes genuinely in
// parallel.
//
// This is the only transport implementation today; the interface it
// implements (shard_transport.h) is message-shaped so a socket transport
// can replace it without touching router or worker code.

#ifndef KSPR_SHARD_LOCAL_TRANSPORT_H_
#define KSPR_SHARD_LOCAL_TRANSPORT_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "shard/shard_transport.h"
#include "shard/shard_worker.h"

namespace kspr {

class LocalShardTransport : public ShardTransport {
 public:
  /// Takes ownership of `workers` (one per shard, already loaded) and
  /// starts one queue thread per shard.
  explicit LocalShardTransport(
      std::vector<std::unique_ptr<ShardWorker>> workers);

  /// Drains every queue (all issued futures are fulfilled) and joins the
  /// shard threads.
  ~LocalShardTransport() override;

  size_t num_shards() const override { return shards_.size(); }

  std::future<CandidateResponse> Candidates(size_t shard,
                                            CandidateRequest request) override;
  std::future<ShardUpdateResponse> ApplyDelta(
      size_t shard, ShardUpdateRequest request) override;
  std::future<RecordResponse> GetRecord(size_t shard,
                                        RecordId global_id) override;
  std::future<ShardInfo> Info(size_t shard) override;
  std::future<bool> SaveSnapshot(size_t shard, std::string path) override;

 private:
  /// One shard's queue + drain thread. The worker is only ever touched
  /// from `thread`, which is what makes ShardWorker's no-internal-locking
  /// contract sound.
  struct Shard {
    std::unique_ptr<ShardWorker> worker;  // touched only from `thread`
    Mutex mu;
    CondVar cv;
    std::deque<std::function<void()>> queue KSPR_GUARDED_BY(mu);
    bool stop KSPR_GUARDED_BY(mu) = false;
    std::thread thread;
  };

  /// Enqueues `fn(worker)` on shard `shard` and returns a future for its
  /// result.
  template <typename Fn>
  auto Enqueue(size_t shard, Fn fn)
      -> std::future<decltype(fn(std::declval<ShardWorker&>()))>;

  void DrainLoop(Shard* shard);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace kspr

#endif  // KSPR_SHARD_LOCAL_TRANSPORT_H_
