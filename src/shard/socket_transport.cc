#include "shard/socket_transport.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>
#include <utility>

namespace kspr {

namespace {

net::Deadline DeadlineIn(int ms) {
  if (ms <= 0) return net::NoDeadline();
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

}  // namespace

SocketShardTransport::SocketShardTransport(std::vector<uint16_t> ports,
                                           SocketTransportOptions options)
    : options_(std::move(options)) {
  assert(!ports.empty());
  shards_.reserve(ports.size());
  for (size_t i = 0; i < ports.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->port = ports[i];
    // Distinct deterministic jitter stream per shard.
    shard->jitter = std::make_unique<Rng>(options_.jitter_seed + i * 7919);
    shards_.push_back(std::move(shard));
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->thread =
        std::thread(&SocketShardTransport::DrainLoop, this, shard.get());
  }
}

SocketShardTransport::~SocketShardTransport() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    {
      MutexLock lock(&shard->mu);
      shard->stop = true;
    }
    shard->cv.NotifyOne();
  }
  for (std::unique_ptr<Shard>& shard : shards_) shard->thread.join();
}

void SocketShardTransport::DrainLoop(Shard* shard) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&shard->mu);
      while (!shard->stop && shard->queue.empty()) shard->cv.Wait(shard->mu);
      if (shard->queue.empty()) return;  // stopped and drained
      task = std::move(shard->queue.front());
      shard->queue.pop_front();
    }
    task();
  }
}

template <typename Fn>
auto SocketShardTransport::Enqueue(size_t shard_index, Fn fn)
    -> std::future<decltype(fn())> {
  using Result = decltype(fn());
  assert(shard_index < shards_.size());
  Shard* shard = shards_[shard_index].get();
  auto task = std::make_shared<std::packaged_task<Result()>>(std::move(fn));
  std::future<Result> future = task->get_future();
  {
    MutexLock lock(&shard->mu);
    shard->queue.push_back([task] { (*task)(); });
  }
  shard->cv.NotifyOne();
  return future;
}

void SocketShardTransport::EnsureConnected(Shard& shard) {
  if (shard.conn.valid()) return;
  shard.conn =
      net::ConnectLoopback(shard.port, DeadlineIn(options_.connect_timeout_ms));
  if (options_.stats) options_.stats->RecordConnect(shard.ever_connected);
  shard.ever_connected = true;
}

void SocketShardTransport::BackoffSleep(Shard& shard,
                                        int consecutive_failures) {
  int64_t ms = options_.backoff_base_ms;
  for (int i = 1; i < consecutive_failures && ms < options_.backoff_max_ms;
       ++i) {
    ms *= 2;
  }
  ms = std::min<int64_t>(ms, options_.backoff_max_ms);
  // Full jitter on top of the exponential base: desynchronises shard
  // supervisors that failed at the same instant.
  ms += static_cast<int64_t>(
      shard.jitter->UniformInt(static_cast<uint64_t>(ms) + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::vector<uint8_t> SocketShardTransport::Attempt(
    Shard& shard, net::MessageType request_type,
    const std::vector<uint8_t>& request_payload,
    net::MessageType expected_response, uint64_t seq,
    net::MessageType* actual_type) {
  EnsureConnected(shard);

  const net::Deadline deadline = DeadlineIn(options_.request_timeout_ms);
  std::vector<uint8_t> frame =
      net::EncodeFrame(request_type, seq, request_payload);

  net::FaultAction fault;
  if (options_.faults != nullptr) fault = options_.faults->Next(shard.index);
  if (fault.kind != net::FaultKind::kNone && options_.stats) {
    options_.stats->RecordFaultInjected();
  }
  switch (fault.kind) {
    case net::FaultKind::kNone:
      shard.conn.SendAll(frame.data(), frame.size(), deadline);
      break;
    case net::FaultKind::kDrop:
      // Swallow the request: the read below runs into the deadline and
      // the retry path takes over.
      break;
    case net::FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
      shard.conn.SendAll(frame.data(), frame.size(), deadline);
      break;
    case net::FaultKind::kDuplicate:
      // Delivered twice; the worker's batch_seq ledger (updates) and the
      // stale-seq discard below (the echoed duplicate response) absorb it.
      shard.conn.SendAll(frame.data(), frame.size(), deadline);
      shard.conn.SendAll(frame.data(), frame.size(), deadline);
      break;
    case net::FaultKind::kCorrupt:
      // Flip the frame's last byte (payload if any, else checksum): the
      // server's verify fails and it drops the connection.
      frame.back() ^= 0xFF;
      shard.conn.SendAll(frame.data(), frame.size(), deadline);
      break;
    case net::FaultKind::kDisconnect:
      shard.conn.Close();
      throw net::SocketError("injected disconnect");
  }

  // Read until `seq` answers; frames with an older seq are duplicates of
  // already-answered requests and are discarded.
  std::vector<uint8_t> header(net::kFrameHeaderSize);
  std::vector<uint8_t> payload;
  for (;;) {
    shard.conn.RecvAll(header.data(), header.size(), deadline);
    const net::FrameHeader response = net::DecodeFrameHeader(header.data());
    payload.resize(response.payload_size);
    shard.conn.RecvAll(payload.data(), payload.size(), deadline);
    net::VerifyPayload(response, payload.data());
    if (response.seq < seq) continue;
    if (response.seq > seq) {
      throw net::WireError("response seq from the future");
    }
    if (response.type != expected_response &&
        response.type != net::MessageType::kError) {
      throw net::WireError(std::string("unexpected response type ") +
                           net::ToString(response.type));
    }
    *actual_type = response.type;
    return payload;
  }
}

std::vector<uint8_t> SocketShardTransport::RoundTrip(
    Shard& shard, net::MessageType request_type,
    const std::vector<uint8_t>& request_payload,
    net::MessageType expected_response) {
  if (options_.stats) options_.stats->RecordRequest();

  TransportErrorKind last_kind = TransportErrorKind::kConnection;
  std::string last_what = "no attempt made";
  const int attempts = 1 + std::max(0, options_.max_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (options_.stats) options_.stats->RecordRetry();
      BackoffSleep(shard, attempt);
    }
    try {
      net::MessageType actual = net::MessageType::kError;
      // Fresh wire seq per attempt: any response to an earlier attempt
      // (e.g. a duplicate) compares below the live seq and is discarded.
      const uint64_t seq = shard.next_seq++;
      std::vector<uint8_t> payload =
          Attempt(shard, request_type, request_payload, expected_response, seq,
                  &actual);
      if (actual == net::MessageType::kError) {
        // The worker received the request and failed deterministically;
        // retrying cannot help. Connection and stream stay healthy.
        const net::ErrorBody err =
            net::DecodeErrorBody(payload.data(), payload.size());
        shard.health.store(ShardHealth::kDegraded, std::memory_order_relaxed);
        if (options_.stats) options_.stats->RecordFailure();
        throw TransportError(TransportErrorKind::kRemote, shard.index,
                             err.message);
      }
      shard.health.store(attempt == 0 ? ShardHealth::kUp
                                      : ShardHealth::kDegraded,
                         std::memory_order_relaxed);
      return payload;
    } catch (const net::SocketTimeout& e) {
      if (options_.stats) options_.stats->RecordTimeout();
      last_kind = TransportErrorKind::kTimeout;
      last_what = e.what();
    } catch (const net::WireError& e) {
      if (options_.stats) options_.stats->RecordFrameError();
      last_kind = TransportErrorKind::kProtocol;
      last_what = e.what();
    } catch (const net::SocketError& e) {
      last_kind = TransportErrorKind::kConnection;
      last_what = e.what();
    }
    // Any failed attempt poisons the connection (a late response to this
    // seq must never be read by a later request).
    shard.conn.Close();
  }
  shard.health.store(ShardHealth::kDown, std::memory_order_relaxed);
  if (options_.stats) options_.stats->RecordFailure();
  throw TransportError(last_kind, shard.index, last_what);
}

std::future<CandidateResponse> SocketShardTransport::Candidates(
    size_t shard_index, CandidateRequest request) {
  Shard* shard = shards_[shard_index].get();
  return Enqueue(shard_index, [this, shard, request] {
    const std::vector<uint8_t> payload =
        RoundTrip(*shard, net::MessageType::kCandidatesRequest,
                  net::Encode(request), net::MessageType::kCandidatesResponse);
    return net::DecodeCandidateResponse(payload.data(), payload.size());
  });
}

std::future<ShardUpdateResponse> SocketShardTransport::ApplyDelta(
    size_t shard_index, ShardUpdateRequest request) {
  Shard* shard = shards_[shard_index].get();
  return Enqueue(shard_index, [this, shard, request = std::move(request)] {
    const std::vector<uint8_t> payload =
        RoundTrip(*shard, net::MessageType::kApplyDeltaRequest,
                  net::Encode(request), net::MessageType::kApplyDeltaResponse);
    return net::DecodeShardUpdateResponse(payload.data(), payload.size());
  });
}

std::future<RecordResponse> SocketShardTransport::GetRecord(
    size_t shard_index, RecordId global_id) {
  Shard* shard = shards_[shard_index].get();
  return Enqueue(shard_index, [this, shard, global_id] {
    const std::vector<uint8_t> payload = RoundTrip(
        *shard, net::MessageType::kGetRecordRequest,
        net::EncodeGetRecordRequest(global_id),
        net::MessageType::kGetRecordResponse);
    return net::DecodeRecordResponse(payload.data(), payload.size());
  });
}

std::future<ShardInfo> SocketShardTransport::Info(size_t shard_index) {
  Shard* shard = shards_[shard_index].get();
  return Enqueue(shard_index, [this, shard] {
    const std::vector<uint8_t> payload =
        RoundTrip(*shard, net::MessageType::kInfoRequest,
                  net::EncodeInfoRequest(), net::MessageType::kInfoResponse);
    return net::DecodeShardInfo(payload.data(), payload.size());
  });
}

std::future<bool> SocketShardTransport::SaveSnapshot(size_t shard_index,
                                                     std::string path) {
  Shard* shard = shards_[shard_index].get();
  return Enqueue(shard_index, [this, shard, path = std::move(path)] {
    const std::vector<uint8_t> payload = RoundTrip(
        *shard, net::MessageType::kSaveSnapshotRequest,
        net::EncodeSaveSnapshotRequest(path),
        net::MessageType::kSaveSnapshotResponse);
    return net::DecodeSaveSnapshotResponse(payload.data(), payload.size()).ok;
  });
}

}  // namespace kspr
