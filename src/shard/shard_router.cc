#include "shard/shard_router.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "shard/local_transport.h"
#include "shard/shard_server.h"
#include "storage/shard_paths.h"

namespace kspr {

const char* ToString(RouterStatus status) {
  switch (status) {
    case RouterStatus::kOk:
      return "ok";
    case RouterStatus::kPartial:
      return "partial";
    case RouterStatus::kUnavailable:
      return "unavailable";
  }
  return "?";
}

std::vector<Dataset> ShardRouter::PartitionDataset(const Dataset& data,
                                                   const ShardMap& map) {
  std::vector<Dataset> slices;
  slices.reserve(map.num_shards());
  for (size_t s = 0; s < map.num_shards(); ++s) {
    slices.emplace_back(data.dim());
  }
  for (size_t s = 0; s < map.num_shards(); ++s) {
    const RecordId total = data.size();
    RecordId count = 0;
    for (RecordId g = static_cast<RecordId>(s); g < total;
         g += static_cast<RecordId>(map.num_shards())) {
      ++count;
    }
    slices[s].Reserve(count);
  }
  for (RecordId g = 0; g < data.size(); ++g) {
    Dataset& slice = slices[map.ShardOf(g)];
    const RecordId local = slice.Add(data.Get(g));
    assert(local == map.LocalOf(g));
    // Tombstones are preserved so shard-local ids stay aligned with the
    // closed-form mapping.
    if (!data.IsLive(g)) slice.Delete(local);
  }
  return slices;
}

std::unique_ptr<ShardRouter> ShardRouter::CreateLocal(const Dataset& data,
                                                      RouterOptions options) {
  options.transport = TransportKind::kLocal;
  return Create(data, std::move(options));
}

std::unique_ptr<ShardRouter> ShardRouter::Create(const Dataset& data,
                                                 RouterOptions options) {
  ShardMap map(options.num_shards);
  // The transport already runs shards in parallel; per-shard engines
  // default to a single worker thread unless the caller asked otherwise.
  if (options.worker.engine.workers <= 0) options.worker.engine.workers = 1;
  if (!options.stats) options.stats = std::make_shared<TransportStats>();
  std::vector<Dataset> slices = PartitionDataset(data, map);
  std::vector<std::unique_ptr<ShardWorker>> workers;
  workers.reserve(slices.size());
  for (size_t s = 0; s < slices.size(); ++s) {
    workers.push_back(std::make_unique<ShardWorker>(
        s, map, std::move(slices[s]), options.worker));
  }

  if (options.transport == TransportKind::kLocal) {
    auto transport = std::make_unique<LocalShardTransport>(std::move(workers));
    return std::make_unique<ShardRouter>(std::move(transport), data.size(),
                                         std::move(options));
  }

  // Socket deployment: one frame server per worker on an ephemeral
  // loopback port, a supervisor-per-shard client in front.
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<uint16_t> ports;
  servers.reserve(workers.size());
  ports.reserve(workers.size());
  for (std::unique_ptr<ShardWorker>& worker : workers) {
    servers.push_back(std::make_unique<ShardServer>(worker.get()));
    ports.push_back(servers.back()->port());
  }
  SocketTransportOptions socket = options.socket;
  if (!socket.stats) socket.stats = options.stats;
  auto transport =
      std::make_unique<SocketShardTransport>(std::move(ports), socket);
  auto router = std::make_unique<ShardRouter>(std::move(transport),
                                              data.size(), std::move(options));
  router->owned_workers_ = std::move(workers);
  router->owned_servers_ = std::move(servers);
  return router;
}

ShardRouter::ShardRouter(std::unique_ptr<ShardTransport> transport,
                         RecordId next_global_id, RouterOptions options)
    : map_(options.num_shards),
      options_(std::move(options)),
      transport_(std::move(transport)),
      next_global_(next_global_id),
      pending_replay_(map_.num_shards()),
      next_batch_seq_(map_.num_shards(), 1),
      health_(map_.num_shards(), ShardHealth::kUp),
      cache_(options_.cache_capacity) {
  assert(transport_ != nullptr);
  assert(transport_->num_shards() == map_.num_shards());
  assert(next_global_ >= 0);
  if (!options_.stats) options_.stats = std::make_shared<TransportStats>();
}

ShardRouter::~ShardRouter() {
  // The client transport goes down first (its supervisor threads hold
  // raw sockets into the servers), then servers, then workers — member
  // declaration order takes care of it; this dtor only exists out of line
  // because ShardServer is forward-declared in the header.
  transport_.reset();
  owned_servers_.clear();
  owned_workers_.clear();
}

uint64_t ShardRouter::version() const {
  ReaderLock lock(&update_mu_);
  return router_version_;
}

RecordId ShardRouter::next_global_id() const {
  ReaderLock lock(&update_mu_);
  return next_global_;
}

size_t ShardRouter::num_subscriptions() const {
  MutexLock lock(&subs_mu_);
  return subs_.size();
}

ShardHealth ShardRouter::shard_health(size_t shard) const {
  MutexLock lock(&health_mu_);
  return health_[shard];
}

std::vector<ShardHealth> ShardRouter::ShardHealths() const {
  MutexLock lock(&health_mu_);
  return health_;
}

void ShardRouter::SetHealth(size_t shard, ShardHealth health) {
  MutexLock lock(&health_mu_);
  health_[shard] = health;
}

template <typename T>
T ShardRouter::AwaitShard(std::future<T>& future, size_t shard) {
  if (options_.shard_timeout_ms > 0) {
    // lint:allow(bare-future-wait) AwaitShard IS the sanctioned funnel.
    const auto status = future.wait_for(
        std::chrono::milliseconds(options_.shard_timeout_ms));
    if (status != std::future_status::ready) {
      // The transport may still fulfil this future later; abandoning it
      // is safe — reads are idempotent and updates are sequenced.
      throw TransportError(TransportErrorKind::kTimeout, shard,
                           "router wait budget of " +
                               std::to_string(options_.shard_timeout_ms) +
                               " ms exceeded");
    }
  }
  try {
    return future.get();  // lint:allow(bare-future-wait) the funnel itself
  } catch (const TransportError&) {
    throw;
  } catch (const std::exception& e) {
    // A local-transport future rethrows worker exceptions verbatim; over
    // a socket the server would have answered a kError frame => kRemote.
    throw TransportError(TransportErrorKind::kRemote, shard, e.what());
  }
}

RecordResponse ShardRouter::ResolveRecord(RecordId global_id) {
  if (global_id < 0 || global_id >= next_global_) return RecordResponse{};
  const size_t shard = map_.ShardOf(global_id);
  if (!pending_replay_[shard].empty()) {
    // The shard is serving pre-backlog state; a lookup there could
    // resurrect a deleted record or miss a queued insert.
    throw TransportError(TransportErrorKind::kShardDown, shard,
                         "shard has unreplayed update batches");
  }
  std::future<RecordResponse> future = transport_->GetRecord(shard, global_id);
  return AwaitShard(future, shard);
}

std::shared_ptr<const KsprResult> ShardRouter::ComputeLocked(
    const Vec& focal, RecordId focal_id, const KsprOptions& options,
    ShardQueryStats* scatter, ScatterFailure* failure) {
  (void)focal_id;  // identity lives in the cache key; the pipeline only
                   // needs the value (the focal's own record, if any, is
                   // removed by the focal filter like any covered record)
  assert(failure != nullptr);

  // Scatter: every reachable shard extracts its local k-skyband in
  // parallel. Shards with a replay backlog are stale by definition and
  // are counted missing without being asked.
  std::vector<std::pair<size_t, std::future<CandidateResponse>>> futures;
  futures.reserve(map_.num_shards());
  for (size_t s = 0; s < map_.num_shards(); ++s) {
    if (!pending_replay_[s].empty()) {
      failure->missing_shards.push_back(s);
      if (failure->error.empty()) {
        failure->error = "shard " + std::to_string(s) +
                         ": unreplayed update batches (degraded)";
      }
      continue;
    }
    futures.emplace_back(s,
                         transport_->Candidates(s, CandidateRequest{options.k}));
  }

  // Gather + the canonical pipeline (core/candidates.h) — each step is
  // load-bearing for shard-count independence.
  std::vector<Candidate> candidates;
  for (auto& [s, f] : futures) {
    try {
      CandidateResponse response = AwaitShard(f, s);
      if (scatter != nullptr) {
        ++scatter->shards_queried;
        if (response.from_cache) ++scatter->shard_cache_hits;
      }
      candidates.insert(candidates.end(), response.candidates.begin(),
                        response.candidates.end());
      SetHealth(s, ShardHealth::kUp);
    } catch (const TransportError& e) {
      failure->missing_shards.push_back(s);
      if (failure->error.empty()) failure->error = e.what();
      SetHealth(s, ShardHealth::kDown);
    }
  }
  std::sort(failure->missing_shards.begin(), failure->missing_shards.end());

  if (!failure->missing_shards.empty() && !options_.allow_partial) {
    // Fail fast: without every shard the merged skyband is not the global
    // one, and silently serving it would break the bitwise contract.
    return nullptr;
  }
  if (scatter != nullptr) scatter->candidates_merged = candidates.size();

  ReduceToGlobalSkyband(&candidates, options.k);
  FilterFocalCovered(&candidates, focal);
  SortCandidates(&candidates);
  if (scatter != nullptr) scatter->candidates_solved = candidates.size();

  return std::make_shared<KsprResult>(
      SolveOnCandidates(candidates, focal, options,
                        options_.solve_leaf_capacity, options_.solve_fanout));
}

RouterQueryResult ShardRouter::QueryLocked(const Vec& focal,
                                           RecordId focal_id,
                                           const KsprOptions& options) {
  RouterQueryResult out;
  const CacheKey key =
      CacheKey::Make(focal, focal_id, options, router_version_);
  if (std::shared_ptr<const KsprResult> hit = cache_.Get(key)) {
    out.result = std::move(hit);
    out.cache_hit = true;
    return out;
  }
  ScatterFailure failure;
  out.result = ComputeLocked(focal, focal_id, options, &out.scatter, &failure);
  out.missing_shards = std::move(failure.missing_shards);
  out.error = std::move(failure.error);
  if (!out.missing_shards.empty()) {
    // Degraded outcome: flagged, and never cached — a later query must
    // re-try the missing shards rather than resurface the gap.
    out.status = out.result != nullptr ? RouterStatus::kPartial
                                       : RouterStatus::kUnavailable;
    if (out.result == nullptr) out.result = std::make_shared<KsprResult>();
    return out;
  }
  cache_.Put(key, out.result);
  {
    // Every k with a live cache entry or subscriber must be in
    // active_ks_ BEFORE the next update batch runs its sweep; updates
    // hold the writer lock, so recording here (still under the shared
    // lock) is early enough.
    MutexLock lock(&ks_mu_);
    active_ks_.insert(options.k);
  }
  return out;
}

RouterQueryResult ShardRouter::Query(RecordId focal_id,
                                     const KsprOptions& options) {
  ReaderLock lock(&update_mu_);
  RouterQueryResult out;
  RecordResponse record;
  try {
    record = ResolveRecord(focal_id);
  } catch (const TransportError& e) {
    out.result = std::make_shared<KsprResult>();
    out.status = RouterStatus::kUnavailable;
    out.missing_shards.push_back(e.shard());
    out.error = e.what();
    return out;
  }
  if (!record.known || !record.live) {
    out.result = std::make_shared<KsprResult>();
    out.focal_live = false;
    return out;
  }
  return QueryLocked(record.value, focal_id, options);
}

RouterQueryResult ShardRouter::Query(const Vec& focal,
                                     const KsprOptions& options) {
  ReaderLock lock(&update_mu_);
  return QueryLocked(focal, kInvalidRecord, options);
}

RouterUpdateResult ShardRouter::ApplyUpdates(const RouterUpdateBatch& batch) {
  WriterLock lock(&update_mu_);
  RouterUpdateResult out;

  // Phase 0 — replay: drain each shard's backlog in arrival order before
  // its slice of THIS batch may be delivered (per-shard FIFO is the
  // consistency contract). A batch that fails again stays queued.
  for (size_t s = 0; s < map_.num_shards(); ++s) {
    while (!pending_replay_[s].empty()) {
      // The request is kept until the shard acknowledges: re-sending the
      // same batch_seq is idempotent on the worker.
      std::future<ShardUpdateResponse> future =
          transport_->ApplyDelta(s, pending_replay_[s].front());
      try {
        (void)AwaitShard(future, s);
      } catch (const TransportError& e) {
        if (out.error.empty()) out.error = e.what();
        SetHealth(s, ShardHealth::kDown);
        break;
      }
      // The skyband changes of a replayed batch are stale news: the
      // cache was already dropped wholesale when the batch first failed.
      pending_replay_[s].pop_front();
      ++out.batches_replayed;
      if (options_.stats) options_.stats->RecordReplay();
      SetHealth(s, pending_replay_[s].empty() ? ShardHealth::kUp
                                              : ShardHealth::kDegraded);
    }
  }

  std::vector<int> ks;
  {
    MutexLock ks_lock(&ks_mu_);
    ks.assign(active_ks_.begin(), active_ks_.end());
  }

  // Phase 1 — route the batch into per-shard deltas; the router assigns
  // global ids monotonically so ShardMap's closed form stays exact.
  std::vector<ShardUpdateRequest> requests(map_.num_shards());
  out.inserted_global_ids.reserve(batch.inserts.size());
  for (const Vec& v : batch.inserts) {
    const RecordId g =
        next_global_ + static_cast<RecordId>(out.inserted_global_ids.size());
    requests[map_.ShardOf(g)].inserts.push_back({g, v});
    out.inserted_global_ids.push_back(g);
  }
  std::unordered_set<RecordId> delete_set;
  for (RecordId g : batch.deletes) {
    if (g < 0 || g >= next_global_) continue;  // never assigned: no-op
    requests[map_.ShardOf(g)].delete_global_ids.push_back(g);
    delete_set.insert(g);
  }
  next_global_ += static_cast<RecordId>(batch.inserts.size());

  // Phase 2 — scatter deltas to the touched shards only (an untouched
  // shard's skyband cannot change). Shards still holding a backlog get
  // their slice QUEUED, not sent: delivering batch N+1 before batch N
  // would violate the order the batch_seq ledger assumes.
  std::vector<std::pair<size_t, std::future<ShardUpdateResponse>>> futures;
  for (size_t s = 0; s < requests.size(); ++s) {
    if (requests[s].inserts.empty() && requests[s].delete_global_ids.empty()) {
      continue;
    }
    requests[s].skyband_ks = ks;
    requests[s].batch_seq = next_batch_seq_[s]++;
    ++out.shards_touched;
    if (!pending_replay_[s].empty()) {
      pending_replay_[s].push_back(std::move(requests[s]));
      out.failed_shards.push_back(s);
      continue;
    }
    // The request stays owned by `requests` (sent as a copy) so a failed
    // shard's slice can move into the replay queue afterwards.
    futures.emplace_back(s, transport_->ApplyDelta(s, requests[s]));
  }

  // Phase 3 — gather. A shard that fails after the transport's full
  // retry budget gets its slice queued for replay; the batch is
  // all-or-nothing per shard (one engine ApplyUpdates call worker-side).
  size_t effective = 0;
  std::map<int, std::vector<Candidate>> changed;
  for (int k : ks) changed[k];  // every tracked k present, even if empty
  for (auto& [s, future] : futures) {
    try {
      ShardUpdateResponse response = AwaitShard(future, s);
      effective += response.inserts_applied + response.deletes_applied;
      out.deletes_applied += response.deletes_applied;
      for (SkybandChange& change : response.skyband_changes) {
        std::vector<Candidate>& merged = changed[change.k];
        merged.insert(merged.end(), change.changed.begin(),
                      change.changed.end());
      }
      SetHealth(s, ShardHealth::kUp);
    } catch (const TransportError& e) {
      pending_replay_[s].push_back(std::move(requests[s]));
      out.failed_shards.push_back(s);
      if (out.error.empty()) out.error = e.what();
      SetHealth(s, ShardHealth::kDown);
    }
  }
  std::sort(out.failed_shards.begin(), out.failed_shards.end());
  const bool degraded = !out.failed_shards.empty();
  out.status = degraded ? RouterStatus::kPartial : RouterStatus::kOk;

  if (!degraded && effective == 0) {
    // Nothing changed anywhere: the version does not move and every
    // cached result and subscriber stays valid as-is.
    out.version = router_version_;
    return out;
  }
  ++router_version_;
  out.version = router_version_;

  // Phase 4 — front-end cache sweep. Normally: drop an entry unless its
  // focal weakly dominates every record that entered or left a k-skyband
  // (then its candidate set — hence regions AND stats — is provably
  // unchanged, see core/candidates.h); survivors are restamped to the
  // new version. Degraded: the failed shards' skyband diffs never
  // arrived, so no entry can be proven untouched — drop everything.
  const auto untouched = [&changed](const Vec& focal, int k) {
    auto it = changed.find(k);
    if (it == changed.end()) return false;  // k never tracked: no proof
    for (const Candidate& c : it->second) {
      if (!WeaklyDominates(focal, c.value)) return false;
    }
    return true;
  };
  const auto [dropped, retained] = cache_.OnDatasetUpdate(
      router_version_, [&](const CacheKey& key) {
        if (degraded) return true;  // conservative total drop
        if (key.focal_id != kInvalidRecord &&
            delete_set.contains(key.focal_id)) {
          return true;
        }
        return !untouched(key.focal, key.k);
      });
  out.cache_dropped = dropped;
  out.cache_retained = retained;

  // Phase 5 — subscriber sweep: same classification, but touched
  // subscribers are recomputed through the scatter-gather pipeline and
  // receive a splice diff only when the result actually changed. While
  // degraded the recompute would be partial, so subscribers are left on
  // their last state and the NEXT clean sweep recomputes all of them
  // (diffs are taken against sub.current, so nothing is lost).
  const bool full_sweep = subs_full_sweep_;
  bool sweep_clean = !degraded;
  MutexLock subs_lock(&subs_mu_);
  for (size_t i = 0; i < subs_.size();) {
    RouterSubscription& sub = *subs_[i];
    ++out.subscribers_examined;
    if (delete_set.contains(sub.focal_id)) {
      // The focal's tombstone may still be queued behind a failed shard,
      // but it is logically deleted as of this batch: terminate now.
      SubscriptionEvent event;
      event.subscription = sub.id;
      event.focal_id = sub.focal_id;
      event.kind = SubscriptionEventKind::kFocalGone;
      event.version = router_version_;
      if (sub.callback) sub.callback(event);
      ++out.subscribers_terminated;
      subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    if (degraded) {
      ++i;
      continue;
    }
    if (!full_sweep && untouched(sub.focal, sub.options.k)) {
      ++out.subscribers_irrelevant;
      ++i;
      continue;
    }
    ScatterFailure failure;
    std::shared_ptr<const KsprResult> result =
        ComputeLocked(sub.focal, sub.focal_id, sub.options, nullptr, &failure);
    if (!failure.missing_shards.empty() || result == nullptr) {
      // Transient scatter failure mid-sweep: leave the subscriber on its
      // last state and force the next clean sweep to revisit everyone.
      sweep_clean = false;
      ++i;
      continue;
    }
    ResultDiff diff = DiffResults(sub.current, *result);
    if (diff.Empty()) {
      // The skyband moved but this focal's candidate set did not.
      ++out.subscribers_irrelevant;
    } else {
      SubscriptionEvent event;
      event.subscription = sub.id;
      event.focal_id = sub.focal_id;
      event.kind = SubscriptionEventKind::kRebuild;
      event.version = router_version_;
      event.diff = std::move(diff);
      event.num_regions = result->regions.size();
      sub.current = *result;
      if (sub.callback) sub.callback(event);
      ++out.subscribers_notified;
    }
    ++i;
  }
  subs_full_sweep_ = !sweep_clean;
  return out;
}

SubscriptionId ShardRouter::Subscribe(RecordId focal_id,
                                      const KsprOptions& options,
                                      SubscriptionCallback callback) {
  WriterLock lock(&update_mu_);
  if (options.k < 1) return kInvalidSubscription;
  RecordResponse record;
  try {
    record = ResolveRecord(focal_id);
  } catch (const TransportError&) {
    return kInvalidSubscription;  // owning shard unreachable right now
  }
  if (!record.known || !record.live) return kInvalidSubscription;

  RouterQueryResult initial = QueryLocked(record.value, focal_id, options);
  if (initial.status != RouterStatus::kOk) {
    // A standing query must start from a complete state — a partial
    // baseline would make every later diff wrong.
    return kInvalidSubscription;
  }

  auto sub = std::make_unique<RouterSubscription>();
  sub->focal = record.value;
  sub->focal_id = focal_id;
  sub->options = options;
  sub->current = *initial.result;
  sub->callback = std::move(callback);

  MutexLock subs_lock(&subs_mu_);
  sub->id = next_subscription_++;

  SubscriptionEvent event;
  event.subscription = sub->id;
  event.focal_id = focal_id;
  event.kind = SubscriptionEventKind::kInitial;
  event.version = router_version_;
  event.diff = DiffResults(KsprResult{}, sub->current);
  event.num_regions = sub->current.regions.size();
  if (sub->callback) sub->callback(event);

  const SubscriptionId id = sub->id;
  subs_.push_back(std::move(sub));
  return id;
}

bool ShardRouter::Unsubscribe(SubscriptionId id) {
  MutexLock lock(&subs_mu_);
  for (size_t i = 0; i < subs_.size(); ++i) {
    if (subs_[i]->id == id) {
      subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::vector<ShardInfo> ShardRouter::Info() {
  ReaderLock lock(&update_mu_);
  std::vector<std::future<ShardInfo>> futures;
  futures.reserve(map_.num_shards());
  for (size_t s = 0; s < map_.num_shards(); ++s) {
    futures.push_back(transport_->Info(s));
  }
  std::vector<ShardInfo> infos;
  infos.reserve(futures.size());
  for (size_t s = 0; s < futures.size(); ++s) {
    try {
      infos.push_back(AwaitShard(futures[s], s));
    } catch (const TransportError&) {
      ShardInfo down;
      down.reachable = false;
      infos.push_back(down);
      SetHealth(s, ShardHealth::kDown);
    }
  }
  return infos;
}

SnapshotSaveResult ShardRouter::SaveSnapshots(const std::string& base_path) {
  // The shared lock excludes ApplyUpdates, so the N snapshots form one
  // consistent cut of the global record set.
  ReaderLock lock(&update_mu_);
  SnapshotSaveResult out;
  std::vector<std::future<bool>> futures;
  out.paths.reserve(map_.num_shards());
  futures.reserve(map_.num_shards());
  for (size_t s = 0; s < map_.num_shards(); ++s) {
    out.paths.push_back(ShardSnapshotPath(base_path, s, map_.num_shards()));
    futures.push_back(transport_->SaveSnapshot(s, out.paths.back()));
  }
  for (size_t s = 0; s < futures.size(); ++s) {
    std::string error;
    try {
      if (!AwaitShard(futures[s], s)) {
        error = "shard " + std::to_string(s) + ": snapshot save failed at " +
                out.paths[s];
      }
    } catch (const TransportError& e) {
      error = e.what();
    }
    if (!error.empty()) {
      out.ok = false;
      out.failed_shards.push_back(s);
      out.errors.push_back(std::move(error));
    }
  }
  // A snapshot set with holes must never be mistaken for a complete cut.
  return out;
}

}  // namespace kspr
