#include "shard/shard_router.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

#include "shard/local_transport.h"
#include "storage/shard_paths.h"

namespace kspr {

std::vector<Dataset> ShardRouter::PartitionDataset(const Dataset& data,
                                                   const ShardMap& map) {
  std::vector<Dataset> slices;
  slices.reserve(map.num_shards());
  for (size_t s = 0; s < map.num_shards(); ++s) {
    slices.emplace_back(data.dim());
  }
  for (size_t s = 0; s < map.num_shards(); ++s) {
    const RecordId total = data.size();
    RecordId count = 0;
    for (RecordId g = static_cast<RecordId>(s); g < total;
         g += static_cast<RecordId>(map.num_shards())) {
      ++count;
    }
    slices[s].Reserve(count);
  }
  for (RecordId g = 0; g < data.size(); ++g) {
    Dataset& slice = slices[map.ShardOf(g)];
    const RecordId local = slice.Add(data.Get(g));
    assert(local == map.LocalOf(g));
    // Tombstones are preserved so shard-local ids stay aligned with the
    // closed-form mapping.
    if (!data.IsLive(g)) slice.Delete(local);
  }
  return slices;
}

std::unique_ptr<ShardRouter> ShardRouter::CreateLocal(const Dataset& data,
                                                      RouterOptions options) {
  ShardMap map(options.num_shards);
  // The transport already runs shards in parallel; per-shard engines
  // default to a single worker thread unless the caller asked otherwise.
  if (options.worker.engine.workers <= 0) options.worker.engine.workers = 1;
  std::vector<Dataset> slices = PartitionDataset(data, map);
  std::vector<std::unique_ptr<ShardWorker>> workers;
  workers.reserve(slices.size());
  for (size_t s = 0; s < slices.size(); ++s) {
    workers.push_back(std::make_unique<ShardWorker>(
        s, map, std::move(slices[s]), options.worker));
  }
  auto transport = std::make_unique<LocalShardTransport>(std::move(workers));
  return std::make_unique<ShardRouter>(std::move(transport), data.size(),
                                       std::move(options));
}

ShardRouter::ShardRouter(std::unique_ptr<ShardTransport> transport,
                         RecordId next_global_id, RouterOptions options)
    : map_(options.num_shards),
      options_(std::move(options)),
      transport_(std::move(transport)),
      next_global_(next_global_id),
      cache_(options_.cache_capacity) {
  assert(transport_ != nullptr);
  assert(transport_->num_shards() == map_.num_shards());
  assert(next_global_ >= 0);
}

uint64_t ShardRouter::version() const {
  std::shared_lock<std::shared_mutex> lock(update_mu_);
  return router_version_;
}

RecordId ShardRouter::next_global_id() const {
  std::shared_lock<std::shared_mutex> lock(update_mu_);
  return next_global_;
}

size_t ShardRouter::num_subscriptions() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  return subs_.size();
}

RecordResponse ShardRouter::ResolveRecord(RecordId global_id) {
  if (global_id < 0 || global_id >= next_global_) return RecordResponse{};
  return transport_->GetRecord(map_.ShardOf(global_id), global_id).get();
}

std::shared_ptr<const KsprResult> ShardRouter::ComputeLocked(
    const Vec& focal, RecordId focal_id, const KsprOptions& options,
    ShardQueryStats* scatter) {
  (void)focal_id;  // identity lives in the cache key; the pipeline only
                   // needs the value (the focal's own record, if any, is
                   // removed by the focal filter like any covered record)

  // Scatter: every shard extracts its local k-skyband in parallel.
  std::vector<std::future<CandidateResponse>> futures;
  futures.reserve(map_.num_shards());
  for (size_t s = 0; s < map_.num_shards(); ++s) {
    futures.push_back(transport_->Candidates(s, CandidateRequest{options.k}));
  }

  // Gather + the canonical pipeline (core/candidates.h) — each step is
  // load-bearing for shard-count independence.
  std::vector<Candidate> candidates;
  for (std::future<CandidateResponse>& f : futures) {
    CandidateResponse response = f.get();
    if (scatter != nullptr) {
      ++scatter->shards_queried;
      if (response.from_cache) ++scatter->shard_cache_hits;
    }
    candidates.insert(candidates.end(), response.candidates.begin(),
                      response.candidates.end());
  }
  if (scatter != nullptr) scatter->candidates_merged = candidates.size();

  ReduceToGlobalSkyband(&candidates, options.k);
  FilterFocalCovered(&candidates, focal);
  SortCandidates(&candidates);
  if (scatter != nullptr) scatter->candidates_solved = candidates.size();

  return std::make_shared<KsprResult>(
      SolveOnCandidates(candidates, focal, options,
                        options_.solve_leaf_capacity, options_.solve_fanout));
}

RouterQueryResult ShardRouter::QueryLocked(const Vec& focal,
                                           RecordId focal_id,
                                           const KsprOptions& options) {
  RouterQueryResult out;
  const CacheKey key =
      CacheKey::Make(focal, focal_id, options, router_version_);
  if (std::shared_ptr<const KsprResult> hit = cache_.Get(key)) {
    out.result = std::move(hit);
    out.cache_hit = true;
    return out;
  }
  out.result = ComputeLocked(focal, focal_id, options, &out.scatter);
  cache_.Put(key, out.result);
  {
    // Every k with a live cache entry or subscriber must be in
    // active_ks_ BEFORE the next update batch runs its sweep; updates
    // hold the writer lock, so recording here (still under the shared
    // lock) is early enough.
    std::lock_guard<std::mutex> lock(ks_mu_);
    active_ks_.insert(options.k);
  }
  return out;
}

RouterQueryResult ShardRouter::Query(RecordId focal_id,
                                     const KsprOptions& options) {
  std::shared_lock<std::shared_mutex> lock(update_mu_);
  const RecordResponse record = ResolveRecord(focal_id);
  if (!record.known || !record.live) {
    RouterQueryResult out;
    out.result = std::make_shared<KsprResult>();
    out.focal_live = false;
    return out;
  }
  return QueryLocked(record.value, focal_id, options);
}

RouterQueryResult ShardRouter::Query(const Vec& focal,
                                     const KsprOptions& options) {
  std::shared_lock<std::shared_mutex> lock(update_mu_);
  return QueryLocked(focal, kInvalidRecord, options);
}

RouterUpdateResult ShardRouter::ApplyUpdates(const RouterUpdateBatch& batch) {
  std::unique_lock<std::shared_mutex> lock(update_mu_);
  RouterUpdateResult out;

  std::vector<int> ks;
  {
    std::lock_guard<std::mutex> ks_lock(ks_mu_);
    ks.assign(active_ks_.begin(), active_ks_.end());
  }

  // Route the batch into per-shard deltas; the router assigns global ids
  // monotonically so ShardMap's closed form stays exact.
  std::vector<ShardUpdateRequest> requests(map_.num_shards());
  out.inserted_global_ids.reserve(batch.inserts.size());
  for (const Vec& v : batch.inserts) {
    const RecordId g =
        next_global_ + static_cast<RecordId>(out.inserted_global_ids.size());
    requests[map_.ShardOf(g)].inserts.push_back({g, v});
    out.inserted_global_ids.push_back(g);
  }
  std::unordered_set<RecordId> delete_set;
  for (RecordId g : batch.deletes) {
    if (g < 0 || g >= next_global_) continue;  // never assigned: no-op
    requests[map_.ShardOf(g)].delete_global_ids.push_back(g);
    delete_set.insert(g);
  }
  next_global_ += static_cast<RecordId>(batch.inserts.size());

  // Scatter deltas to the touched shards only — an untouched shard's
  // skyband cannot change, so it contributes nothing to the symmetric
  // difference either.
  std::vector<std::pair<size_t, std::future<ShardUpdateResponse>>> futures;
  for (size_t s = 0; s < requests.size(); ++s) {
    if (requests[s].inserts.empty() && requests[s].delete_global_ids.empty()) {
      continue;
    }
    requests[s].skyband_ks = ks;
    futures.emplace_back(s,
                         transport_->ApplyDelta(s, std::move(requests[s])));
  }
  out.shards_touched = futures.size();

  size_t effective = 0;
  std::map<int, std::vector<Candidate>> changed;
  for (int k : ks) changed[k];  // every tracked k present, even if empty
  for (auto& [s, future] : futures) {
    ShardUpdateResponse response = future.get();
    effective += response.inserts_applied + response.deletes_applied;
    out.deletes_applied += response.deletes_applied;
    for (SkybandChange& change : response.skyband_changes) {
      std::vector<Candidate>& merged = changed[change.k];
      merged.insert(merged.end(), change.changed.begin(),
                    change.changed.end());
    }
  }

  if (effective == 0) {
    // Nothing changed anywhere: the version does not move and every
    // cached result and subscriber stays valid as-is.
    out.version = router_version_;
    return out;
  }
  ++router_version_;
  out.version = router_version_;

  // Front-end cache sweep: drop an entry unless its focal weakly
  // dominates every record that entered or left a k-skyband (then its
  // candidate set — hence regions AND stats — is provably unchanged, see
  // core/candidates.h); survivors are restamped to the new version.
  const auto untouched = [&changed](const Vec& focal, int k) {
    auto it = changed.find(k);
    if (it == changed.end()) return false;  // k never tracked: no proof
    for (const Candidate& c : it->second) {
      if (!WeaklyDominates(focal, c.value)) return false;
    }
    return true;
  };
  const auto [dropped, retained] = cache_.OnDatasetUpdate(
      router_version_, [&](const CacheKey& key) {
        if (key.focal_id != kInvalidRecord &&
            delete_set.contains(key.focal_id)) {
          return true;
        }
        return !untouched(key.focal, key.k);
      });
  out.cache_dropped = dropped;
  out.cache_retained = retained;

  // Subscriber sweep: same classification, but touched subscribers are
  // recomputed through the scatter-gather pipeline and receive a splice
  // diff only when the result actually changed.
  std::lock_guard<std::mutex> subs_lock(subs_mu_);
  for (size_t i = 0; i < subs_.size();) {
    RouterSubscription& sub = *subs_[i];
    ++out.subscribers_examined;
    if (delete_set.contains(sub.focal_id)) {
      SubscriptionEvent event;
      event.subscription = sub.id;
      event.focal_id = sub.focal_id;
      event.kind = SubscriptionEventKind::kFocalGone;
      event.version = router_version_;
      if (sub.callback) sub.callback(event);
      ++out.subscribers_terminated;
      subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    if (untouched(sub.focal, sub.options.k)) {
      ++out.subscribers_irrelevant;
      ++i;
      continue;
    }
    std::shared_ptr<const KsprResult> result =
        ComputeLocked(sub.focal, sub.focal_id, sub.options, nullptr);
    ResultDiff diff = DiffResults(sub.current, *result);
    if (diff.Empty()) {
      // The skyband moved but this focal's candidate set did not.
      ++out.subscribers_irrelevant;
    } else {
      SubscriptionEvent event;
      event.subscription = sub.id;
      event.focal_id = sub.focal_id;
      event.kind = SubscriptionEventKind::kRebuild;
      event.version = router_version_;
      event.diff = std::move(diff);
      event.num_regions = result->regions.size();
      sub.current = *result;
      if (sub.callback) sub.callback(event);
      ++out.subscribers_notified;
    }
    ++i;
  }
  return out;
}

SubscriptionId ShardRouter::Subscribe(RecordId focal_id,
                                      const KsprOptions& options,
                                      SubscriptionCallback callback) {
  std::unique_lock<std::shared_mutex> lock(update_mu_);
  if (options.k < 1) return kInvalidSubscription;
  const RecordResponse record = ResolveRecord(focal_id);
  if (!record.known || !record.live) return kInvalidSubscription;

  RouterQueryResult initial = QueryLocked(record.value, focal_id, options);

  auto sub = std::make_unique<RouterSubscription>();
  sub->focal = record.value;
  sub->focal_id = focal_id;
  sub->options = options;
  sub->current = *initial.result;
  sub->callback = std::move(callback);

  std::lock_guard<std::mutex> subs_lock(subs_mu_);
  sub->id = next_subscription_++;

  SubscriptionEvent event;
  event.subscription = sub->id;
  event.focal_id = focal_id;
  event.kind = SubscriptionEventKind::kInitial;
  event.version = router_version_;
  event.diff = DiffResults(KsprResult{}, sub->current);
  event.num_regions = sub->current.regions.size();
  if (sub->callback) sub->callback(event);

  const SubscriptionId id = sub->id;
  subs_.push_back(std::move(sub));
  return id;
}

bool ShardRouter::Unsubscribe(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (size_t i = 0; i < subs_.size(); ++i) {
    if (subs_[i]->id == id) {
      subs_.erase(subs_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::vector<ShardInfo> ShardRouter::Info() {
  std::shared_lock<std::shared_mutex> lock(update_mu_);
  std::vector<std::future<ShardInfo>> futures;
  futures.reserve(map_.num_shards());
  for (size_t s = 0; s < map_.num_shards(); ++s) {
    futures.push_back(transport_->Info(s));
  }
  std::vector<ShardInfo> infos;
  infos.reserve(futures.size());
  for (std::future<ShardInfo>& f : futures) infos.push_back(f.get());
  return infos;
}

std::vector<std::string> ShardRouter::SaveSnapshots(
    const std::string& base_path) {
  // The shared lock excludes ApplyUpdates, so the N snapshots form one
  // consistent cut of the global record set.
  std::shared_lock<std::shared_mutex> lock(update_mu_);
  std::vector<std::string> paths;
  std::vector<std::future<bool>> futures;
  paths.reserve(map_.num_shards());
  futures.reserve(map_.num_shards());
  for (size_t s = 0; s < map_.num_shards(); ++s) {
    paths.push_back(ShardSnapshotPath(base_path, s, map_.num_shards()));
    futures.push_back(transport_->SaveSnapshot(s, paths.back()));
  }
  for (std::future<bool>& f : futures) f.get();
  return paths;
}

}  // namespace kspr
