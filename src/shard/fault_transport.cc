#include "shard/fault_transport.h"

#include <chrono>
#include <thread>

namespace kspr {

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<ShardTransport> inner, net::FaultSchedule schedule,
    std::shared_ptr<TransportStats> stats)
    : inner_(std::move(inner)),
      schedule_(std::move(schedule)),
      stats_(std::move(stats)) {}

// The .get() calls below are deliberate: this decorator sits UNDER the
// router, wrapping the inner transport's futures with injected failures —
// the waits happen on detached async threads that stand in for the wire,
// and the router still funnels the OUTER future through AwaitShard.
template <typename Issue>
auto FaultInjectingTransport::Inject(size_t shard, Issue issue)
    -> std::future<decltype(issue().get())> {          // lint:allow(bare-future-wait) unevaluated type context
  using Result = decltype(issue().get());              // lint:allow(bare-future-wait) unevaluated type context
  const net::FaultAction action = schedule_.Next(shard);
  if (action.kind != net::FaultKind::kNone && stats_) {
    stats_->RecordFaultInjected();
  }
  switch (action.kind) {
    case net::FaultKind::kNone:
      return issue();
    case net::FaultKind::kDrop: {
      std::promise<Result> promise;
      promise.set_exception(std::make_exception_ptr(TransportError(
          TransportErrorKind::kTimeout, shard, "injected drop")));
      return promise.get_future();
    }
    case net::FaultKind::kDisconnect: {
      std::promise<Result> promise;
      promise.set_exception(std::make_exception_ptr(TransportError(
          TransportErrorKind::kConnection, shard, "injected disconnect")));
      return promise.get_future();
    }
    case net::FaultKind::kDelay: {
      // The sleep happens on the waiter's async thread, not the caller,
      // so a scatter stays parallel.
      return std::async(std::launch::async,
                        [delay_ms = action.delay_ms,
                         inner_future = issue()]() mutable -> Result {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(delay_ms));
                          // lint:allow(bare-future-wait) wire stand-in
                          return inner_future.get();
                        });
    }
    case net::FaultKind::kDuplicate: {
      // At-least-once delivery: the inner transport sees the request
      // twice, in order; the caller gets the SECOND response. For updates
      // this exercises the worker's batch_seq exactly-once ledger.
      return std::async(std::launch::async,
                        [first = issue(), second = issue()]() mutable {
                          // lint:allow(bare-future-wait) wire stand-in
                          first.get();
                          // lint:allow(bare-future-wait) wire stand-in
                          return second.get();
                        });
    }
    case net::FaultKind::kCorrupt: {
      return std::async(
          std::launch::async,
          [shard, inner_future = issue()]() mutable -> Result {
            // Response arrives, then fails its checksum.
            // lint:allow(bare-future-wait) wire stand-in
            inner_future.get();
            throw TransportError(TransportErrorKind::kProtocol, shard,
                                 "injected frame corruption");
          });
    }
  }
  return issue();
}

std::future<CandidateResponse> FaultInjectingTransport::Candidates(
    size_t shard, CandidateRequest request) {
  return Inject(shard, [&] { return inner_->Candidates(shard, request); });
}

std::future<ShardUpdateResponse> FaultInjectingTransport::ApplyDelta(
    size_t shard, ShardUpdateRequest request) {
  return Inject(shard, [&] { return inner_->ApplyDelta(shard, request); });
}

std::future<RecordResponse> FaultInjectingTransport::GetRecord(
    size_t shard, RecordId global_id) {
  return Inject(shard, [&] { return inner_->GetRecord(shard, global_id); });
}

std::future<ShardInfo> FaultInjectingTransport::Info(size_t shard) {
  return Inject(shard, [&] { return inner_->Info(shard); });
}

std::future<bool> FaultInjectingTransport::SaveSnapshot(size_t shard,
                                                        std::string path) {
  return Inject(shard, [&, path = std::move(path)] {
    return inner_->SaveSnapshot(shard, path);
  });
}

}  // namespace kspr
