// Socket implementation of ShardTransport: one TCP connection supervisor
// per shard.
//
// Every transport call enqueues a job on the target shard's supervisor
// thread and returns a future — the exact shape of LocalShardTransport's
// per-shard FIFO queue, which is what preserves the per-shard ordering
// contract (an ApplyDelta enqueued before a Candidates call reaches the
// wire, and therefore the worker, first). What the supervisor adds is the
// failure model:
//
//   * lazy connect + reconnect with exponential backoff and deterministic
//     jitter (seeded per shard),
//   * a deadline per attempt (SocketTransportOptions::request_timeout_ms),
//   * bounded retries — safe because reads are idempotent and ApplyDelta
//     carries the router's batch_seq for exactly-once apply on the worker,
//   * stale-response discard: every attempt gets a fresh monotonically
//     increasing wire seq, and any inbound frame with a smaller seq is a
//     duplicate from an earlier (injected-duplicate) delivery and is
//     skipped,
//   * optional frame-level fault injection (net::FaultSchedule) applied on
//     the CLIENT side so drops / corruption / disconnects exercise the
//     real timeout, checksum and reconnect paths,
//   * per-shard health (UP / DEGRADED / DOWN) and shared TransportStats.
//
// Remote worker errors (kError frames) are NOT retried: the request
// reached the worker and failed deterministically; retrying would just
// fail again. They surface as TransportError{kRemote}.

#ifndef KSPR_SHARD_SOCKET_TRANSPORT_H_
#define KSPR_SHARD_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "engine/engine_stats.h"
#include "net/fault_schedule.h"
#include "net/socket.h"
#include "net/transport_error.h"
#include "net/wire.h"
#include "shard/shard_transport.h"

namespace kspr {

struct SocketTransportOptions {
  int connect_timeout_ms = 1000;
  /// Per-attempt deadline for one request/response round trip; 0 means
  /// no deadline (block forever — only sane in tests).
  int request_timeout_ms = 2000;
  /// Extra attempts after the first failed one. Total attempts = 1 + this.
  int max_retries = 3;
  int backoff_base_ms = 10;   // doubles per consecutive failure
  int backoff_max_ms = 500;
  uint64_t jitter_seed = 42;  // per-shard deterministic backoff jitter
  /// Client-side frame fault injection; empty = faults disabled.
  net::FaultSchedule* faults = nullptr;
  /// Shared counters; may be null.
  std::shared_ptr<TransportStats> stats;
};

class SocketShardTransport : public ShardTransport {
 public:
  /// Connects lazily to `ports[i]` on 127.0.0.1 for shard i.
  SocketShardTransport(std::vector<uint16_t> ports,
                       SocketTransportOptions options);

  /// Drains every queue (all issued futures are fulfilled, possibly with
  /// TransportError) and joins the supervisors.
  ~SocketShardTransport() override;

  size_t num_shards() const override { return shards_.size(); }

  std::future<CandidateResponse> Candidates(size_t shard,
                                            CandidateRequest request) override;
  std::future<ShardUpdateResponse> ApplyDelta(
      size_t shard, ShardUpdateRequest request) override;
  std::future<RecordResponse> GetRecord(size_t shard,
                                        RecordId global_id) override;
  std::future<ShardInfo> Info(size_t shard) override;
  std::future<bool> SaveSnapshot(size_t shard, std::string path) override;

  ShardHealth health(size_t shard) const {
    return shards_[shard]->health.load(std::memory_order_relaxed);
  }
  std::shared_ptr<TransportStats> stats() const { return options_.stats; }

 private:
  struct Shard {
    size_t index = 0;
    uint16_t port = 0;
    // Thread-confined supervisor state: conn, ever_connected, next_seq and
    // jitter are touched only from `thread` (inside queued jobs), so they
    // need no mutex — the queue handoff below provides the happens-before.
    net::Socket conn;
    bool ever_connected = false; // distinguishes connect from reconnect
    uint64_t next_seq = 1;       // wire seq
    std::unique_ptr<Rng> jitter;
    std::atomic<ShardHealth> health{ShardHealth::kUp};

    Mutex mu;
    CondVar cv;
    std::deque<std::function<void()>> queue KSPR_GUARDED_BY(mu);
    bool stop KSPR_GUARDED_BY(mu) = false;
    std::thread thread;
  };

  template <typename Fn>
  auto Enqueue(size_t shard, Fn fn) -> std::future<decltype(fn())>;

  void DrainLoop(Shard* shard);

  /// One logical operation: encode, attempt up to 1 + max_retries round
  /// trips, decode. Throws TransportError after the budget is exhausted.
  std::vector<uint8_t> RoundTrip(Shard& shard, net::MessageType request_type,
                                 const std::vector<uint8_t>& request_payload,
                                 net::MessageType expected_response);

  /// Single attempt: ensure connected, apply any injected fault, send,
  /// read (discarding stale-seq frames) until `seq` answers. Throws
  /// net::SocketTimeout / net::SocketError / net::WireError.
  std::vector<uint8_t> Attempt(Shard& shard, net::MessageType request_type,
                               const std::vector<uint8_t>& request_payload,
                               net::MessageType expected_response,
                               uint64_t seq, net::MessageType* actual_type);

  void EnsureConnected(Shard& shard);
  void BackoffSleep(Shard& shard, int consecutive_failures);

  std::vector<std::unique_ptr<Shard>> shards_;
  SocketTransportOptions options_;
};

}  // namespace kspr

#endif  // KSPR_SHARD_SOCKET_TRANSPORT_H_
