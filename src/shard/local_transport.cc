#include "shard/local_transport.h"

#include <cassert>
#include <utility>

namespace kspr {

LocalShardTransport::LocalShardTransport(
    std::vector<std::unique_ptr<ShardWorker>> workers) {
  assert(!workers.empty());
  shards_.reserve(workers.size());
  for (std::unique_ptr<ShardWorker>& worker : workers) {
    auto shard = std::make_unique<Shard>();
    shard->worker = std::move(worker);
    shards_.push_back(std::move(shard));
  }
  // Threads start only after the vector is fully built so DrainLoop never
  // observes a partially constructed transport.
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->thread = std::thread(&LocalShardTransport::DrainLoop, this,
                                shard.get());
  }
}

LocalShardTransport::~LocalShardTransport() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    {
      MutexLock lock(&shard->mu);
      shard->stop = true;
    }
    shard->cv.NotifyOne();
  }
  for (std::unique_ptr<Shard>& shard : shards_) shard->thread.join();
}

void LocalShardTransport::DrainLoop(Shard* shard) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&shard->mu);
      while (!shard->stop && shard->queue.empty()) shard->cv.Wait(shard->mu);
      if (shard->queue.empty()) {
        // stop was requested and the queue is drained: every issued
        // future has been fulfilled.
        return;
      }
      task = std::move(shard->queue.front());
      shard->queue.pop_front();
    }
    task();
  }
}

template <typename Fn>
auto LocalShardTransport::Enqueue(size_t shard_index, Fn fn)
    -> std::future<decltype(fn(std::declval<ShardWorker&>()))> {
  using Result = decltype(fn(std::declval<ShardWorker&>()));
  assert(shard_index < shards_.size());
  Shard* shard = shards_[shard_index].get();
  auto task = std::make_shared<std::packaged_task<Result(ShardWorker&)>>(
      std::move(fn));
  std::future<Result> future = task->get_future();
  {
    MutexLock lock(&shard->mu);
    shard->queue.push_back(
        [task, shard] { (*task)(*shard->worker); });
  }
  shard->cv.NotifyOne();
  return future;
}

std::future<CandidateResponse> LocalShardTransport::Candidates(
    size_t shard, CandidateRequest request) {
  return Enqueue(shard, [request = std::move(request)](ShardWorker& worker) {
    return worker.Candidates(request);
  });
}

std::future<ShardUpdateResponse> LocalShardTransport::ApplyDelta(
    size_t shard, ShardUpdateRequest request) {
  return Enqueue(shard, [request = std::move(request)](ShardWorker& worker) {
    return worker.ApplyDelta(request);
  });
}

std::future<RecordResponse> LocalShardTransport::GetRecord(
    size_t shard, RecordId global_id) {
  return Enqueue(shard, [global_id](ShardWorker& worker) {
    return worker.GetRecord(global_id);
  });
}

std::future<ShardInfo> LocalShardTransport::Info(size_t shard) {
  return Enqueue(shard,
                 [](ShardWorker& worker) { return worker.Info(); });
}

std::future<bool> LocalShardTransport::SaveSnapshot(size_t shard,
                                                    std::string path) {
  return Enqueue(shard, [path = std::move(path)](ShardWorker& worker) {
    return worker.SaveSnapshot(path);
  });
}

}  // namespace kspr
