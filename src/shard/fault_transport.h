// A ShardTransport decorator that injects failures ABOVE the wire.
//
// Where SocketShardTransport's built-in injection corrupts real frames to
// exercise the socket retry/reconnect machinery, this decorator wraps ANY
// transport (the local one included) and manufactures the *outcomes* the
// router must survive — a timed-out future, a dead connection, a poisoned
// frame, a duplicated delivery — deterministically from the same
// net::FaultSchedule grammar. That makes router-level degraded-mode tests
// cheap: no sockets, no sleeps beyond injected delays, fully reproducible.
//
// Action mapping (per forwarded request, counters advance per shard):
//   kDrop        future throws TransportError{kTimeout}; the request never
//                reaches the inner transport
//   kDelay       sleeps delay_ms, then forwards
//   kDuplicate   forwards TWICE, resolves to the second response — the
//                worker's batch_seq ledger must absorb the first
//   kCorrupt     forwards, discards the response, throws
//                TransportError{kProtocol}
//   kDisconnect  future throws TransportError{kConnection}
//
// The decorator does not retry: it models the transport AFTER its retry
// budget, which is exactly the contract the router programs against.

#ifndef KSPR_SHARD_FAULT_TRANSPORT_H_
#define KSPR_SHARD_FAULT_TRANSPORT_H_

#include <future>
#include <memory>
#include <string>
#include <utility>

#include "engine/engine_stats.h"
#include "net/fault_schedule.h"
#include "net/transport_error.h"
#include "shard/shard_transport.h"

namespace kspr {

class FaultInjectingTransport : public ShardTransport {
 public:
  FaultInjectingTransport(std::unique_ptr<ShardTransport> inner,
                          net::FaultSchedule schedule,
                          std::shared_ptr<TransportStats> stats = nullptr);

  size_t num_shards() const override { return inner_->num_shards(); }

  std::future<CandidateResponse> Candidates(size_t shard,
                                            CandidateRequest request) override;
  std::future<ShardUpdateResponse> ApplyDelta(
      size_t shard, ShardUpdateRequest request) override;
  std::future<RecordResponse> GetRecord(size_t shard,
                                        RecordId global_id) override;
  std::future<ShardInfo> Info(size_t shard) override;
  std::future<bool> SaveSnapshot(size_t shard, std::string path) override;

 private:
  /// Applies the shard's next scheduled action around `issue` (a callable
  /// returning std::future<T> from the inner transport).
  template <typename Issue>
  auto Inject(size_t shard, Issue issue)
      -> std::future<decltype(issue().get())>;  // lint:allow(bare-future-wait) unevaluated type context

  std::unique_ptr<ShardTransport> inner_;
  net::FaultSchedule schedule_;
  std::shared_ptr<TransportStats> stats_;
};

}  // namespace kspr

#endif  // KSPR_SHARD_FAULT_TRANSPORT_H_
