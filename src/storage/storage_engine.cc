#include "storage/storage_engine.h"

#include <algorithm>

#include "storage/snapshot_format.h"
#include "storage/snapshot_writer.h"

namespace kspr {
namespace {

/// Top-down per-level frame budget: levels above the leaves get enough
/// frames to pin all their nodes (budget permitting, min 1 each), the
/// leaf level takes what is left. Shallow levels are on every descent
/// path, so pinning them buys the most per frame.
std::vector<int> SizeLevels(const std::vector<uint8_t>& level_of_slot,
                            int num_levels, int budget) {
  std::vector<int64_t> count(num_levels, 0);
  for (uint8_t l : level_of_slot) {
    if (l == snapshot::kRetiredLevel) continue;
    count[std::min<int>(l, num_levels - 1)]++;
  }
  std::vector<int> cap(num_levels, 1);
  int64_t rem = std::max<int64_t>(0, budget - num_levels);
  for (int l = 0; l + 1 < num_levels; ++l) {
    const int64_t add = std::clamp<int64_t>(count[l] - 1, 0, rem);
    cap[l] += static_cast<int>(add);
    rem -= add;
  }
  cap[num_levels - 1] += static_cast<int>(rem);
  return cap;
}

}  // namespace

void StorageEngine::Save(const std::string& path, const Dataset& data,
                         const RTree& tree) {
  SnapshotWriter::Write(path, data, tree);
}

std::unique_ptr<StorageEngine> StorageEngine::Open(const std::string& path,
                                                   StorageOptions options) {
  std::unique_ptr<StorageEngine> engine(new StorageEngine);
  engine->path_ = path;
  engine->reader_ = std::make_unique<SnapshotReader>(
      path, SnapshotReader::Options{.verify_all = options.verify_all,
                                    .use_mmap = options.use_mmap});
  const snapshot::Header& h = engine->reader_->header();
  engine->data_ = engine->reader_->RestoreDataset();

  engine->pool_ =
      std::make_unique<BufferPool>(engine->reader_.get(),
                                   options.buffer_pages);
  if (h.num_levels > 0 &&
      (!options.level_pages.empty() || options.per_level_sizing)) {
    engine->level_capacities_ =
        !options.level_pages.empty()
            ? options.level_pages
            : SizeLevels(engine->reader_->levels(), h.num_levels,
                         options.buffer_pages);
    engine->pool_->ConfigureLevels(engine->reader_->levels(),
                                   engine->level_capacities_);
  }

  engine->tree_ = RTree::FromStorage(
      static_cast<int>(h.num_slots), engine->reader_->free_list(), h.root,
      h.height, static_cast<int>(h.live_nodes), h.leaf_capacity, h.fanout,
      engine->pool_.get());
  // The pool's tracker does the accounting while disk-backed (Fetch goes
  // through the pool); attaching it to the tree keeps that SAME tracker
  // counting — and receiving Retire on node frees — after Materialize.
  engine->tree_.SetTracker(engine->pool_->tracker());
  return engine;
}

void StorageEngine::PrepareForUpdates() {
  if (stale_) return;
  tree_.Materialize(
      [this](int id, RTree::Node* out) { reader_->ReadNode(id, out); });
  pool_->DetachIo();
  stale_ = true;
}

void StorageEngine::Resave(const std::string& path) {
  PrepareForUpdates();
  SnapshotWriter::Write(path.empty() ? path_ : path, data_, tree_);
}

void StorageEngine::ReclaimGraveyard() { pool_->ReclaimGraveyard(); }

}  // namespace kspr
