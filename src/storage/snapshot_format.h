// On-disk snapshot format shared by SnapshotWriter and SnapshotReader.
//
// A snapshot serialises one (Dataset, RTree) pair into fixed-size pages of
// DiskModel::kPageSize bytes. Every page reserves its last 8 bytes for a
// checksum of the preceding payload (FNV-1a-64 over 64-bit lanes, see
// PageChecksum), so torn writes and bit rot are detected per page —
// lazily for node pages (at first buffer-pool fault), eagerly for
// everything else (at Open).
//
// Page layout (page ids are file offsets / kPageSize):
//
//   page 0                     header (see field list in EncodeHeader)
//   pages 1 .. D               dataset stream: n*d doubles (row major),
//                              then n live bytes, packed across payloads
//   pages 1+D .. 1+D+L-1       directory stream: one u8 tree level per
//                              node slot (kRetiredLevel for retired
//                              slots), then the free list as i32s
//   pages 1+D+L + slot         one page per R-tree node slot, live and
//                              retired alike, so slot id -> page id is a
//                              constant offset. These are the pages the
//                              buffer pool faults on demand.
//
// All integers are little-endian regardless of host byte order; doubles
// are serialised as the little-endian bytes of their IEEE-754 bit
// pattern. The header stores an endianness marker so a big-endian writer
// bug (or a corrupted header) is caught instead of yielding garbage
// coordinates.
//
// Node page payload:
//   u8 leaf, u8 retired, u16 pad, i32 count, i32 parent, i32 num_items,
//   f64 mbr_lo[dim], f64 mbr_hi[dim], i32 items[num_items]
// which for the library's caps (dim <= 8, fanout <= 64 + one split slack)
// fits a 4 KB page with room to spare; the writer re-checks per node.

#ifndef KSPR_STORAGE_SNAPSHOT_FORMAT_H_
#define KSPR_STORAGE_SNAPSHOT_FORMAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/disk_model.h"

namespace kspr {

/// Any malformed-snapshot condition: bad magic, version or endianness,
/// truncated file, checksum mismatch, or a node that does not fit a page.
/// The buffer pool also throws this from a lazy node fault on corruption.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace snapshot {

inline constexpr char kMagic[8] = {'K', 'S', 'P', 'R', 'S', 'N', 'A', 'P'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kEndianMarker = 0x01020304u;
inline constexpr int kPageSize = DiskModel::kPageSize;
inline constexpr int kChecksumBytes = 8;
inline constexpr int kPayloadBytes = kPageSize - kChecksumBytes;
/// Directory level value for retired node slots. PageTracker clamps
/// levels to its last partition, so retired-then-recycled slots fall into
/// the leaf partition like every other out-of-directory page.
inline constexpr uint8_t kRetiredLevel = 0xFF;

/// Page checksum: four interleaved FNV-1a-64 streams over little-endian
/// 64-bit lanes (lane i feeds stream i mod 4), folded together at the
/// end. The classic byte-serial FNV is one dependent multiply per byte;
/// Open verifies ~20 pages eagerly on the cold-start path, and the
/// 4-stream lane variant is ~30x faster there (8 bytes per multiply, 4
/// independent dependency chains) while still catching any single-page
/// corruption. kPayloadBytes is a multiple of 32, but byte and lane tails
/// are handled for generality.
inline uint64_t PageChecksum(const uint8_t* p, size_t n) {
  constexpr uint64_t kBasis = 1469598103934665603ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  auto lane = [](const uint8_t* q) {
    uint64_t v;
    if constexpr (std::endian::native == std::endian::little) {
      __builtin_memcpy(&v, q, 8);
    } else {
      v = 0;
      for (int b = 0; b < 8; ++b) v |= static_cast<uint64_t>(q[b]) << (8 * b);
    }
    return v;
  };
  uint64_t h0 = kBasis, h1 = kBasis + 1, h2 = kBasis + 2, h3 = kBasis + 3;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    h0 = (h0 ^ lane(p + i)) * kPrime;
    h1 = (h1 ^ lane(p + i + 8)) * kPrime;
    h2 = (h2 ^ lane(p + i + 16)) * kPrime;
    h3 = (h3 ^ lane(p + i + 24)) * kPrime;
  }
  for (; i + 8 <= n; i += 8) h0 = (h0 ^ lane(p + i)) * kPrime;
  for (; i < n; ++i) h0 = (h0 ^ p[i]) * kPrime;
  uint64_t h = h0;
  h = (h ^ h1) * kPrime;
  h = (h ^ h2) * kPrime;
  h = (h ^ h3) * kPrime;
  return h;
}

/// True iff `page`'s trailing checksum matches its payload. The hot-loop
/// form of VerifyPage: no error-string construction per page.
inline bool PageOk(const uint8_t* page) {
  uint64_t stored = 0;
  for (int b = 0; b < 8; ++b) {
    stored |= static_cast<uint64_t>(page[kPayloadBytes + b]) << (8 * b);
  }
  return PageChecksum(page, kPayloadBytes) == stored;
}

/// Sequential little-endian encoder over a caller-owned byte buffer.
/// Appends; the page splitter pads the tail.
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) {
    out_->push_back(static_cast<uint8_t>(v));
    out_->push_back(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

 private:
  std::vector<uint8_t>* out_;
};

/// Sequential little-endian decoder over a byte range. Throws
/// SnapshotError on overrun (truncated stream).
class Decoder {
 public:
  Decoder(const uint8_t* p, size_t n) : p_(p), end_(p + n) {}

  uint8_t U8() {
    Need(1);
    return *p_++;
  }
  uint16_t U16() {
    Need(2);
    uint16_t v = static_cast<uint16_t>(p_[0] | (p_[1] << 8));
    p_ += 2;
    return v;
  }
  uint32_t U32() {
    Need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }
  uint64_t U64() {
    Need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  void Need(size_t n) const {
    if (static_cast<size_t>(end_ - p_) < n) {
      throw SnapshotError("snapshot: truncated stream");
    }
  }
  const uint8_t* p_;
  const uint8_t* end_;
};

/// Decoded header (page 0). Field order here IS the serialised order.
struct Header {
  uint32_t format_version = kFormatVersion;
  uint32_t page_size = kPageSize;
  uint32_t dim = 0;
  int64_t num_records = 0;  // dataset rows incl. tombstones
  int64_t num_live = 0;
  uint64_t dataset_version = 0;
  int32_t root = -1;
  int32_t height = 0;
  int32_t leaf_capacity = 0;
  int32_t fanout = 0;
  int64_t num_slots = 0;   // node slots, live + retired
  int64_t live_nodes = 0;
  int32_t num_levels = 0;  // == height; directory levels are 0..num_levels-1
  int64_t dataset_pages = 0;
  int64_t directory_pages = 0;
  int64_t free_list_len = 0;
  int64_t total_pages = 0;

  int64_t first_directory_page() const { return 1 + dataset_pages; }
  int64_t first_node_page() const {
    return first_directory_page() + directory_pages;
  }
  int64_t PageOfSlot(int64_t slot) const { return first_node_page() + slot; }
};

/// Pages (rounded up) needed for a `bytes`-long packed stream.
inline int64_t PagesFor(int64_t bytes) {
  return (bytes + kPayloadBytes - 1) / kPayloadBytes;
}

/// Seals a page in place: pads `page` (which holds < kPayloadBytes of
/// payload) to kPageSize with the checksum in the trailing 8 bytes.
inline void SealPage(std::vector<uint8_t>* page) {
  page->resize(kPayloadBytes, 0);
  const uint64_t sum = PageChecksum(page->data(), kPayloadBytes);
  Encoder enc(page);
  enc.U64(sum);
}

/// Verifies a sealed 4 KB page; `what` names the page in the error.
inline void VerifyPage(const uint8_t* page, const std::string& what) {
  if (!PageOk(page)) {
    throw SnapshotError("snapshot: checksum mismatch in " + what);
  }
}

}  // namespace snapshot
}  // namespace kspr

#endif  // KSPR_STORAGE_SNAPSHOT_FORMAT_H_
