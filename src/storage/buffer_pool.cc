#include "storage/buffer_pool.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace kspr {

BufferPool::BufferPool(SnapshotReader* reader, int buffer_pages)
    : reader_(reader), tracker_(buffer_pages) {
  tracker_.SetListener(this);
}

BufferPool::~BufferPool() { tracker_.SetListener(nullptr); }

void BufferPool::ConfigureLevels(std::vector<uint8_t> level_of_slot,
                                 std::vector<int> level_capacity) {
  tracker_.ConfigureLevels(std::move(level_of_slot),
                           std::move(level_capacity));
  // ConfigureLevels resets tracker residency without eviction callbacks;
  // drop our frames to match (setup time: no reference is live).
  MutexLock lock(&frames_mu_);
  frames_.clear();
  graveyard_.clear();
}

const RTree::Node& BufferPool::FetchNode(int id) {
  if (!io_enabled_.load(std::memory_order_acquire)) {
    throw std::logic_error("BufferPool: FetchNode after DetachIo");
  }
  for (;;) {
    // A miss triggers OnPageRead under the tracker mutex, which installs
    // the frame before Access returns.
    tracker_.Access(id);
    MutexLock lock(&frames_mu_);
    auto it = frames_.find(id);
    if (it != frames_.end()) return *it->second;
    // Raced: a concurrent miss evicted this page between our Access and
    // the lookup. Re-access (now a miss) and re-read.
  }
}

void BufferPool::OnPageRead(int page_id) {
  if (!io_enabled_.load(std::memory_order_acquire)) return;
  const auto start = std::chrono::steady_clock::now();
  auto frame = std::make_unique<RTree::Node>();
  reader_->ReadNode(page_id, frame.get());
  read_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count(),
                     std::memory_order_relaxed);
  MutexLock lock(&frames_mu_);
  auto& slot = frames_[page_id];
  if (slot != nullptr) {
    // Zero-capacity partitions re-read on every access without an
    // eviction callback: park the superseded frame, a reader may still
    // hold it.
    graveyard_.push_back(std::move(slot));
  }
  slot = std::move(frame);
}

void BufferPool::OnPageDropped(int page_id) {
  MutexLock lock(&frames_mu_);
  auto it = frames_.find(page_id);
  if (it == frames_.end()) return;
  graveyard_.push_back(std::move(it->second));
  frames_.erase(it);
}

void BufferPool::DetachIo() {
  tracker_.SetListener(nullptr);
  io_enabled_.store(false, std::memory_order_release);
  MutexLock lock(&frames_mu_);
  frames_.clear();
  graveyard_.clear();
}

void BufferPool::ReclaimGraveyard() {
  MutexLock lock(&frames_mu_);
  graveyard_.clear();
}

size_t BufferPool::frames_resident() const {
  MutexLock lock(&frames_mu_);
  return frames_.size();
}

size_t BufferPool::graveyard_size() const {
  MutexLock lock(&frames_mu_);
  return graveyard_.size();
}

}  // namespace kspr
