// Read side of the paged snapshot format.
//
// Opening a snapshot validates the header, the file length against the
// header's page count (truncation check), and the dataset + directory
// pages eagerly — those sections are needed up front anyway. Node pages
// are NOT touched at open: they are fetched one `pread` at a time as the
// buffer pool faults on them, each verified against its per-page checksum
// at that moment (or all eagerly with Options::verify_all).
//
// Thread safety: ReadNode is safe from many concurrent threads — pread is
// positionally atomic and the reader state is immutable after open.

#ifndef KSPR_STORAGE_SNAPSHOT_READER_H_
#define KSPR_STORAGE_SNAPSHOT_READER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "index/rtree.h"
#include "storage/snapshot_format.h"

namespace kspr {

class SnapshotReader {
 public:
  struct Options {
    /// Verify every node page at open (O(file) open instead of O(header),
    /// but a corrupt node page fails fast instead of at first fault).
    bool verify_all = false;
    /// Serve node reads from a read-only mmap of the file instead of
    /// pread. Checksums are still verified per fetch.
    bool use_mmap = false;
  };

  /// Opens and validates `path`. Throws SnapshotError for a malformed
  /// snapshot and std::runtime_error for I/O failures.
  explicit SnapshotReader(const std::string& path);
  SnapshotReader(const std::string& path, Options options);
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  const snapshot::Header& header() const { return header_; }
  const std::string& path() const { return path_; }

  /// Rebuilds the Dataset from the (already verified) dataset pages:
  /// every row — tombstones included, ids preserved — then the tombstone
  /// flags. The restored version() counts the replayed mutations, not the
  /// saved stamp (which header().dataset_version preserves); cache keys
  /// only need monotonicity within one engine lifetime.
  Dataset RestoreDataset() const;

  /// Per-slot tree levels (snapshot::kRetiredLevel for retired slots).
  const std::vector<uint8_t>& levels() const { return levels_; }

  /// Retired slots in saved (LIFO reuse) order.
  const std::vector<int32_t>& free_list() const { return free_list_; }

  /// Fetches and decodes node `slot` (one pread or mmap copy), verifying
  /// the page checksum. Throws SnapshotError on corruption or
  /// out-of-range slot. `out` is fully overwritten.
  void ReadNode(int slot, RTree::Node* out) const;

  /// Bytes fetched by ReadNode so far (excludes the eager open reads).
  int64_t node_bytes_read() const;

 private:
  void ReadPages(int64_t first_page, int64_t count, uint8_t* out) const;
  void FetchRawPage(int64_t page_id, uint8_t* out) const;

  std::string path_;
  Options options_;
  int fd_ = -1;
  const uint8_t* map_ = nullptr;  // non-null iff use_mmap
  size_t map_len_ = 0;
  snapshot::Header header_;
  std::vector<uint8_t> dataset_stream_;
  std::vector<uint8_t> levels_;
  std::vector<int32_t> free_list_;
  mutable std::atomic<int64_t> node_bytes_read_{0};
};

}  // namespace kspr

#endif  // KSPR_STORAGE_SNAPSHOT_READER_H_
