#include "storage/snapshot_writer.h"

#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "storage/snapshot_format.h"

namespace kspr {
namespace {

using snapshot::Encoder;
using snapshot::Header;
using snapshot::kPayloadBytes;
using snapshot::kRetiredLevel;

/// RAII stdio handle that also deletes the staging file on early exit.
struct StagedFile {
  std::FILE* f = nullptr;
  std::string tmp_path;
  ~StagedFile() {
    if (f != nullptr) {
      std::fclose(f);
      std::remove(tmp_path.c_str());
    }
  }
};

void WritePage(std::FILE* f, std::vector<uint8_t>* page,
               const std::string& path) {
  snapshot::SealPage(page);
  if (std::fwrite(page->data(), 1, page->size(), f) != page->size()) {
    throw std::runtime_error("snapshot: short write to " + path);
  }
  page->clear();
}

/// Splits a packed byte stream into sealed pages.
void WriteStream(std::FILE* f, const std::vector<uint8_t>& stream,
                 const std::string& path) {
  std::vector<uint8_t> page;
  for (size_t off = 0; off < stream.size(); off += kPayloadBytes) {
    const size_t n = std::min<size_t>(kPayloadBytes, stream.size() - off);
    page.assign(stream.begin() + off, stream.begin() + off + n);
    WritePage(f, &page, path);
  }
}

/// Per-slot tree depth (0 = root) for the level directory; retired slots
/// get kRetiredLevel.
std::vector<uint8_t> ComputeLevels(const RTree& tree) {
  std::vector<uint8_t> level(tree.num_slots(), kRetiredLevel);
  if (tree.empty()) return level;
  std::deque<std::pair<int, uint8_t>> queue;
  queue.emplace_back(tree.root(), 0);
  while (!queue.empty()) {
    const auto [id, depth] = queue.front();
    queue.pop_front();
    level[id] = depth;
    const RTree::Node& node = tree.NodeAt(id);
    if (node.leaf) continue;
    for (int32_t child : node.items) {
      queue.emplace_back(child, static_cast<uint8_t>(depth + 1));
    }
  }
  return level;
}

void EncodeHeader(const Header& h, std::vector<uint8_t>* out) {
  Encoder enc(out);
  for (char c : snapshot::kMagic) enc.U8(static_cast<uint8_t>(c));
  enc.U32(h.format_version);
  enc.U32(snapshot::kEndianMarker);
  enc.U32(h.page_size);
  enc.U32(h.dim);
  enc.I64(h.num_records);
  enc.I64(h.num_live);
  enc.U64(h.dataset_version);
  enc.I32(h.root);
  enc.I32(h.height);
  enc.I32(h.leaf_capacity);
  enc.I32(h.fanout);
  enc.I64(h.num_slots);
  enc.I64(h.live_nodes);
  enc.I32(h.num_levels);
  enc.I64(h.dataset_pages);
  enc.I64(h.directory_pages);
  enc.I64(h.free_list_len);
  enc.I64(h.total_pages);
}

void EncodeNode(const RTree::Node& node, int dim, int slot,
                std::vector<uint8_t>* out) {
  Encoder enc(out);
  enc.U8(node.leaf ? 1 : 0);
  enc.U8(node.retired ? 1 : 0);
  enc.U16(0);  // pad
  if (node.retired) {
    enc.I32(0);   // count
    enc.I32(-1);  // parent
    enc.I32(0);   // num_items
    for (int i = 0; i < 2 * dim; ++i) enc.F64(0.0);
    return;
  }
  enc.I32(node.count);
  enc.I32(node.parent);
  enc.I32(static_cast<int32_t>(node.items.size()));
  for (int i = 0; i < dim; ++i) enc.F64(node.mbr.lo.v[i]);
  for (int i = 0; i < dim; ++i) enc.F64(node.mbr.hi.v[i]);
  for (int32_t item : node.items) enc.I32(item);
  if (out->size() > static_cast<size_t>(kPayloadBytes)) {
    throw SnapshotError("snapshot: node " + std::to_string(slot) +
                        " exceeds one page (" + std::to_string(out->size()) +
                        " bytes)");
  }
}

}  // namespace

void SnapshotWriter::Write(const std::string& path, const Dataset& data,
                           const RTree& tree) {
  if (tree.disk_backed()) {
    throw SnapshotError("snapshot: materialize the tree before saving");
  }

  Header h;
  h.dim = static_cast<uint32_t>(data.dim());
  h.num_records = data.size();
  h.num_live = data.num_live();
  h.dataset_version = data.version();
  h.root = tree.root();
  h.height = tree.height();
  h.leaf_capacity = tree.leaf_capacity();
  h.fanout = tree.fanout();
  h.num_slots = tree.num_slots();
  h.live_nodes = tree.num_nodes();
  h.num_levels = tree.height();

  // Dataset stream: n*d row-major doubles, then n live bytes.
  std::vector<uint8_t> dataset_stream;
  dataset_stream.reserve(static_cast<size_t>(h.num_records) * (h.dim * 8 + 1));
  {
    Encoder enc(&dataset_stream);
    for (RecordId id = 0; id < data.size(); ++id) {
      const double* row = data.Row(id);
      for (int i = 0; i < data.dim(); ++i) enc.F64(row[i]);
    }
    for (RecordId id = 0; id < data.size(); ++id) {
      enc.U8(data.IsLive(id) ? 1 : 0);
    }
  }
  h.dataset_pages = snapshot::PagesFor(dataset_stream.size());

  // Directory stream: per-slot level bytes, then the free list.
  const std::vector<uint8_t> levels = ComputeLevels(tree);
  std::vector<uint8_t> dir_stream;
  {
    Encoder enc(&dir_stream);
    for (uint8_t l : levels) enc.U8(l);
    for (int32_t slot : tree.free_list()) enc.I32(slot);
  }
  h.free_list_len = static_cast<int64_t>(tree.free_list().size());
  h.directory_pages = snapshot::PagesFor(dir_stream.size());
  h.total_pages = 1 + h.dataset_pages + h.directory_pages + h.num_slots;

  StagedFile staged;
  staged.tmp_path = path + ".tmp";
  staged.f = std::fopen(staged.tmp_path.c_str(), "wb");
  if (staged.f == nullptr) {
    throw std::runtime_error("snapshot: cannot create " + staged.tmp_path);
  }

  std::vector<uint8_t> page;
  EncodeHeader(h, &page);
  WritePage(staged.f, &page, staged.tmp_path);
  WriteStream(staged.f, dataset_stream, staged.tmp_path);
  WriteStream(staged.f, dir_stream, staged.tmp_path);
  for (int slot = 0; slot < tree.num_slots(); ++slot) {
    EncodeNode(tree.NodeAt(slot), data.dim(), slot, &page);
    WritePage(staged.f, &page, staged.tmp_path);
  }

  if (std::fflush(staged.f) != 0) {
    throw std::runtime_error("snapshot: flush failed for " + staged.tmp_path);
  }
  std::fclose(staged.f);
  staged.f = nullptr;  // disarm the cleanup
  if (std::rename(staged.tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(staged.tmp_path.c_str());
    throw std::runtime_error("snapshot: cannot rename into " + path);
  }
}

}  // namespace kspr
