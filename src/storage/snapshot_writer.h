// Serialises a (Dataset, RTree) pair into the paged snapshot format.
//
// The tree must be materialised (not disk-backed) — the writer walks every
// node slot through NodeAt. Writing is atomic at the filesystem level: the
// snapshot is staged to `path + ".tmp"` and renamed over `path`, so a
// crash mid-save never leaves a half-written file under the real name.

#ifndef KSPR_STORAGE_SNAPSHOT_WRITER_H_
#define KSPR_STORAGE_SNAPSHOT_WRITER_H_

#include <string>

#include "common/dataset.h"
#include "index/rtree.h"

namespace kspr {

class SnapshotWriter {
 public:
  /// Writes the snapshot, replacing any existing file at `path`. The tree
  /// must have been built over exactly `data`. Throws SnapshotError on a
  /// node that does not fit a page and std::runtime_error on I/O failure.
  static void Write(const std::string& path, const Dataset& data,
                    const RTree& tree);
};

}  // namespace kspr

#endif  // KSPR_STORAGE_SNAPSHOT_WRITER_H_
