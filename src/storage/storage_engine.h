// Disk-backed serving: snapshot file + buffer pool + hollow R-tree.
//
// StorageEngine::Save persists a (Dataset, RTree) pair; Open brings one
// back in O(header + dataset) time — node pages stay on disk and are
// paged in through a real BufferPool as queries touch them, so opening a
// saved snapshot costs a small constant instead of an O(n log n) rebuild.
// The opened dataset/tree plug straight into QueryEngine (which has a
// StorageEngine* constructor): query results — regions AND stats — are
// bitwise-identical to an in-memory engine over the same data, because
// the pool decodes the exact doubles the writer serialised and the solver
// never reads pool counters.
//
// Buffer sizing follows the per-level store idiom (HaliteClustering's
// stCountingTree keeps one store per tree level): every descent crosses
// the shallow levels, so with per_level_sizing the root-side levels get
// enough frames to pin themselves (up to the budget) and the leaf level
// gets the remainder. The flat single-LRU mode matches the historical
// simulator default.
//
// Updates: the engine cannot mutate a hollow tree page-by-page.
// PrepareForUpdates (called by QueryEngine::ApplyUpdates under its writer
// lock) materialises every node into memory, detaches the pool's I/O and
// marks the engine stale — the file no longer reflects the in-memory
// state until Resave. The pool's TRACKER stays attached to the tree, so
// post-materialise serving keeps simulated-accounting continuity and
// freed nodes keep retiring their pages (the phantom-page audit stays
// meaningful across the transition).

#ifndef KSPR_STORAGE_STORAGE_ENGINE_H_
#define KSPR_STORAGE_STORAGE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "index/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/snapshot_reader.h"

namespace kspr {

struct StorageOptions {
  /// Total buffer-pool frames (flat LRU unless per_level_sizing).
  int buffer_pages = 128;

  /// Split `buffer_pages` into per-level LRU partitions sized top-down:
  /// each level above the leaves gets enough frames to hold all its nodes
  /// (budget permitting, min 1), leaves get the remainder.
  bool per_level_sizing = false;

  /// Explicit per-level frame counts (level 0 = root). Overrides
  /// buffer_pages/per_level_sizing when non-empty.
  std::vector<int> level_pages;

  /// Verify every node-page checksum at Open instead of lazily at fault.
  bool verify_all = false;

  /// Serve node pages from a read-only mmap instead of pread.
  bool use_mmap = false;
};

class StorageEngine {
 public:
  /// Serialises `data` + `tree` (which must be materialised) to `path`,
  /// atomically replacing any existing snapshot. Throws SnapshotError /
  /// std::runtime_error on failure.
  static void Save(const std::string& path, const Dataset& data,
                   const RTree& tree);

  /// Opens a snapshot for serving. Validates header/dataset/directory,
  /// restores the Dataset, and builds a hollow RTree whose fetches fault
  /// node pages through the buffer pool. Throws SnapshotError on any
  /// malformed or truncated file.
  static std::unique_ptr<StorageEngine> Open(const std::string& path,
                                             StorageOptions options = {});

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  Dataset* dataset() { return &data_; }
  const Dataset& dataset() const { return data_; }
  RTree* tree() { return &tree_; }
  const RTree& tree() const { return tree_; }
  BufferPool* pool() { return pool_.get(); }
  const BufferPool* pool() const { return pool_.get(); }
  const std::string& path() const { return path_; }

  /// Per-level frame capacities the pool was configured with (empty in
  /// flat mode). Feed these plus `reader()->levels()` to a plain
  /// PageTracker to simulate this pool exactly.
  const std::vector<int>& level_capacities() const {
    return level_capacities_;
  }
  const SnapshotReader* reader() const { return reader_.get(); }

  /// Materialises the tree, detaches pool I/O and marks the snapshot
  /// stale (in-memory state will diverge from the file). Idempotent.
  /// Callers must hold whatever lock quiesces readers —
  /// QueryEngine::ApplyUpdates calls this under its writer lock before
  /// mutating anything.
  void PrepareForUpdates();

  /// True once PrepareForUpdates ran: the file no longer (necessarily)
  /// matches the in-memory dataset/tree.
  bool stale() const { return stale_; }

  /// Saves the CURRENT in-memory state over `path` (default: the path
  /// this engine was opened from). Materialises first if still hollow.
  /// The engine keeps serving from memory afterwards; reopen the file to
  /// return to disk-backed serving.
  void Resave(const std::string& path = "");

  /// Destroys frames evicted from the pool since the last quiesce. Safe
  /// only while no query is in flight. No-op once stale.
  void ReclaimGraveyard();

 private:
  StorageEngine() = default;

  std::string path_;
  std::unique_ptr<SnapshotReader> reader_;
  std::unique_ptr<BufferPool> pool_;
  Dataset data_;
  RTree tree_;
  std::vector<int> level_capacities_;
  bool stale_ = false;
};

}  // namespace kspr

#endif  // KSPR_STORAGE_STORAGE_ENGINE_H_
