// Per-shard snapshot naming for the sharded serving tier.
//
// A sharded deployment persists one paged snapshot per shard (each shard
// worker saves its own slice through StorageEngine::Save). The names are
// derived from one base path so a deployment can be reopened knowing only
// the base and the shard count — and so a snapshot saved under one shard
// count is never mistaken for a slice of another partitioning (the shard
// count is part of the name).

#ifndef KSPR_STORAGE_SHARD_PATHS_H_
#define KSPR_STORAGE_SHARD_PATHS_H_

#include <string>

namespace kspr {

/// Path of shard `shard`'s snapshot in an N-shard deployment rooted at
/// `base_path`: "<base_path>.shard<shard>-of-<num_shards>".
inline std::string ShardSnapshotPath(const std::string& base_path,
                                     size_t shard, size_t num_shards) {
  return base_path + ".shard" + std::to_string(shard) + "-of-" +
         std::to_string(num_shards);
}

}  // namespace kspr

#endif  // KSPR_STORAGE_SHARD_PATHS_H_
