#include "storage/fixture.h"

#include <cstdlib>
#include <filesystem>

#include "datagen/synthetic.h"
#include "index/rtree.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/storage_engine.h"

namespace kspr {

Dataset MakeFixtureDataset(const FixtureParams& params) {
  return GenerateIndependent(params.n, params.d, params.seed);
}

std::string StorageFixturePath(const FixtureParams& params) {
  namespace fs = std::filesystem;
  fs::path dir;
  if (const char* env = std::getenv("KSPR_FIXTURE_DIR");
      env != nullptr && env[0] != '\0') {
    dir = env;
    fs::create_directories(dir);
  } else {
    dir = fs::temp_directory_path();
  }
  const std::string name =
      "kspr_fixture_v" + std::to_string(snapshot::kFormatVersion) + "_ind_n" +
      std::to_string(params.n) + "_d" + std::to_string(params.d) + "_s" +
      std::to_string(params.seed) + ".snap";
  const fs::path path = dir / name;

  if (fs::exists(path)) {
    try {
      SnapshotReader probe(path.string());
      const auto& h = probe.header();
      if (h.num_records == params.n &&
          h.dim == static_cast<uint32_t>(params.d)) {
        return path.string();
      }
    } catch (const std::exception&) {
      // Fall through and regenerate.
    }
  }

  const Dataset data = MakeFixtureDataset(params);
  const RTree tree = RTree::BulkLoad(data);
  // Write is staged + renamed, so concurrent regenerators race benignly.
  StorageEngine::Save(path.string(), data, tree);
  return path.string();
}

}  // namespace kspr
