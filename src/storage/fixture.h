// Shared snapshot fixture for tests and benchmarks.
//
// Several consumers (tests/test_storage, bench_fig19_disk, CI smoke runs)
// need the same saved snapshot: IND n=2000 d=4 seed=42, default tree
// capacities. Generating + bulk-loading it takes long enough to be worth
// doing once: the fixture lives under $KSPR_FIXTURE_DIR (or the system
// temp directory), its filename encodes the format version and the
// parameters, and a cached file is validated by opening it before reuse —
// a stale or corrupt cache is silently regenerated. CI caches the
// directory between jobs.

#ifndef KSPR_STORAGE_FIXTURE_H_
#define KSPR_STORAGE_FIXTURE_H_

#include <string>

#include "common/dataset.h"

namespace kspr {

struct FixtureParams {
  int n = 2000;
  int d = 4;
  uint64_t seed = 42;
};

/// The dataset the fixture snapshot serialises (deterministic).
Dataset MakeFixtureDataset(const FixtureParams& params = {});

/// Returns the path of a valid fixture snapshot, creating (or recreating)
/// it if the cached copy is missing or fails to open. Honors
/// $KSPR_FIXTURE_DIR; falls back to the system temp directory.
std::string StorageFixturePath(const FixtureParams& params = {});

}  // namespace kspr

#endif  // KSPR_STORAGE_FIXTURE_H_
