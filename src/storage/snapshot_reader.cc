#include "storage/snapshot_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>

namespace kspr {

using snapshot::Decoder;
using snapshot::Header;
using snapshot::kChecksumBytes;
using snapshot::kPageSize;
using snapshot::kPayloadBytes;

namespace {

Header DecodeHeader(const uint8_t* payload, const std::string& path) {
  if (std::memcmp(payload, snapshot::kMagic, 8) != 0) {
    throw SnapshotError(path + ": not a kSPR snapshot (bad magic)");
  }
  Decoder dec(payload + 8, kPayloadBytes - 8);
  Header h;
  h.format_version = dec.U32();
  if (h.format_version != snapshot::kFormatVersion) {
    throw SnapshotError(path + ": unsupported snapshot format version " +
                        std::to_string(h.format_version));
  }
  const uint32_t endian = dec.U32();
  if (endian != snapshot::kEndianMarker) {
    throw SnapshotError(path + ": endianness marker mismatch");
  }
  h.page_size = dec.U32();
  if (h.page_size != static_cast<uint32_t>(kPageSize)) {
    throw SnapshotError(path + ": page size " + std::to_string(h.page_size) +
                        " != " + std::to_string(kPageSize));
  }
  h.dim = dec.U32();
  h.num_records = dec.I64();
  h.num_live = dec.I64();
  h.dataset_version = dec.U64();
  h.root = dec.I32();
  h.height = dec.I32();
  h.leaf_capacity = dec.I32();
  h.fanout = dec.I32();
  h.num_slots = dec.I64();
  h.live_nodes = dec.I64();
  h.num_levels = dec.I32();
  h.dataset_pages = dec.I64();
  h.directory_pages = dec.I64();
  h.free_list_len = dec.I64();
  h.total_pages = dec.I64();
  if (h.dim < 1 || h.dim > static_cast<uint32_t>(kMaxDim) ||
      h.num_records < 0 || h.num_slots < 0 || h.free_list_len < 0 ||
      h.total_pages !=
          1 + h.dataset_pages + h.directory_pages + h.num_slots) {
    throw SnapshotError(path + ": inconsistent header");
  }
  return h;
}

}  // namespace

SnapshotReader::SnapshotReader(const std::string& path)
    : SnapshotReader(path, Options()) {}

SnapshotReader::SnapshotReader(const std::string& path, Options options)
    : path_(path), options_(options) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("snapshot: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("snapshot: fstat failed for " + path + ": " +
                             std::strerror(err));
  }

  try {
    if (st.st_size < kPageSize) {
      throw SnapshotError(path + ": too short for a snapshot header");
    }
    std::vector<uint8_t> page(kPageSize);
    ReadPages(0, 1, page.data());
    snapshot::VerifyPage(page.data(), "header of " + path);
    header_ = DecodeHeader(page.data(), path);
    if (st.st_size != header_.total_pages * kPageSize) {
      throw SnapshotError(
          path + ": truncated (" + std::to_string(st.st_size) +
          " bytes, header expects " +
          std::to_string(header_.total_pages * kPageSize) + ")");
    }

    if (options_.use_mmap) {
      void* m = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd_, 0);
      if (m == MAP_FAILED) {
        throw std::runtime_error("snapshot: mmap failed for " + path);
      }
      map_ = static_cast<const uint8_t*>(m);
      map_len_ = static_cast<size_t>(st.st_size);
    }

    // Dataset + directory pages are contiguous (pages 1 .. D+L): one
    // pread covers both, then each page verifies and unpacks into its
    // stream. This is the whole eager cost of Open.
    const int64_t meta_pages =
        header_.dataset_pages + header_.directory_pages;
    std::vector<uint8_t> pages(static_cast<size_t>(meta_pages) * kPageSize);
    ReadPages(1, meta_pages, pages.data());
    dataset_stream_.reserve(static_cast<size_t>(header_.dataset_pages) *
                            kPayloadBytes);
    for (int64_t p = 0; p < header_.dataset_pages; ++p) {
      const uint8_t* page_p = pages.data() + p * kPageSize;
      if (!snapshot::PageOk(page_p)) {
        throw SnapshotError("snapshot: checksum mismatch in dataset page " +
                            std::to_string(1 + p) + " of " + path);
      }
      dataset_stream_.insert(dataset_stream_.end(), page_p,
                             page_p + kPayloadBytes);
    }
    const size_t dataset_bytes =
        static_cast<size_t>(header_.num_records) * (header_.dim * 8 + 1);
    if (dataset_stream_.size() < dataset_bytes) {
      throw SnapshotError(path + ": dataset section shorter than header");
    }

    // Directory pages: per-slot levels + free list.
    std::vector<uint8_t> dir_stream;
    dir_stream.reserve(static_cast<size_t>(header_.directory_pages) *
                       kPayloadBytes);
    for (int64_t p = 0; p < header_.directory_pages; ++p) {
      const uint8_t* page_p =
          pages.data() + (header_.dataset_pages + p) * kPageSize;
      if (!snapshot::PageOk(page_p)) {
        throw SnapshotError(
            "snapshot: checksum mismatch in directory page " +
            std::to_string(header_.first_directory_page() + p) + " of " +
            path);
      }
      dir_stream.insert(dir_stream.end(), page_p, page_p + kPayloadBytes);
    }
    Decoder dec(dir_stream.data(), dir_stream.size());
    levels_.resize(static_cast<size_t>(header_.num_slots));
    for (auto& l : levels_) l = dec.U8();
    free_list_.resize(static_cast<size_t>(header_.free_list_len));
    for (auto& s : free_list_) {
      s = dec.I32();
      if (s < 0 || s >= header_.num_slots) {
        throw SnapshotError(path + ": free-list entry out of range");
      }
    }

    if (options_.verify_all) {
      std::vector<uint8_t> node_page(kPageSize);
      for (int64_t slot = 0; slot < header_.num_slots; ++slot) {
        ReadPages(header_.PageOfSlot(slot), 1, node_page.data());
        if (!snapshot::PageOk(node_page.data())) {
          throw SnapshotError(
              "snapshot: checksum mismatch in node page for slot " +
              std::to_string(slot) + " of " + path);
        }
      }
    }
  } catch (...) {
    if (map_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(map_), map_len_);
    }
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

SnapshotReader::~SnapshotReader() {
  if (map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), map_len_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void SnapshotReader::FetchRawPage(int64_t page_id, uint8_t* out) const {
  ReadPages(page_id, 1, out);
}

void SnapshotReader::ReadPages(int64_t first_page, int64_t count,
                               uint8_t* out) const {
  const int64_t off = first_page * kPageSize;
  const size_t len = static_cast<size_t>(count) * kPageSize;
  if (map_ != nullptr) {
    if (static_cast<size_t>(off) + len > map_len_) {
      throw SnapshotError(path_ + ": page " + std::to_string(first_page) +
                          " beyond mapped file");
    }
    std::memcpy(out, map_ + off, len);
    return;
  }
  // One pread covers the whole contiguous range (Open reads the dataset
  // and directory sections in a single call each); the loop only handles
  // short reads and EINTR.
  size_t got = 0;
  while (got < len) {
    const ssize_t n =
        ::pread(fd_, out + got, len - got, off + static_cast<int64_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("snapshot: pread failed for " + path_ + ": " +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw SnapshotError(path_ + ": unexpected EOF at page " +
                          std::to_string(first_page));
    }
    got += static_cast<size_t>(n);
  }
}

Dataset SnapshotReader::RestoreDataset() const {
  const int dim = static_cast<int>(header_.dim);
  // The ctor verified the stream covers num_records rows + live bytes, so
  // rows decode through raw little-endian loads and the whole dataset is
  // adopted in one move (this is the cold-start hot loop; per-record Add
  // replay or the bounds-checking Decoder would triple it).
  const size_t num_records = static_cast<size_t>(header_.num_records);
  const size_t num_values = num_records * static_cast<size_t>(dim);
  std::vector<double> rows(num_values);
  const uint8_t* p = dataset_stream_.data();
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(rows.data(), p, num_values * 8);
    p += num_values * 8;
  } else {
    for (size_t i = 0; i < num_values; ++i, p += 8) {
      uint64_t bits = 0;
      for (int b = 0; b < 8; ++b) {
        bits |= static_cast<uint64_t>(p[b]) << (8 * b);
      }
      rows[i] = std::bit_cast<double>(bits);
    }
  }
  std::vector<uint8_t> live(p, p + num_records);
  Dataset data = Dataset::FromRows(dim, std::move(rows), std::move(live),
                                   header_.dataset_version);
  if (data.num_live() != header_.num_live) {
    throw SnapshotError(path_ + ": live-record count mismatch");
  }
  return data;
}

void SnapshotReader::ReadNode(int slot, RTree::Node* out) const {
  if (slot < 0 || slot >= header_.num_slots) {
    throw SnapshotError(path_ + ": node slot " + std::to_string(slot) +
                        " out of range");
  }
  alignas(8) uint8_t page[kPageSize];
  FetchRawPage(header_.PageOfSlot(slot), page);
  node_bytes_read_.fetch_add(kPageSize, std::memory_order_relaxed);
  if (!snapshot::PageOk(page)) {
    throw SnapshotError("snapshot: checksum mismatch in node page for slot " +
                        std::to_string(slot) + " of " + path_);
  }

  Decoder dec(page, kPayloadBytes);
  const int dim = static_cast<int>(header_.dim);
  out->leaf = dec.U8() != 0;
  out->retired = dec.U8() != 0;
  dec.U16();  // pad
  out->count = dec.I32();
  out->parent = dec.I32();
  const int32_t num_items = dec.I32();
  if (num_items < 0 ||
      num_items > std::max(header_.leaf_capacity, header_.fanout) + 1) {
    throw SnapshotError(path_ + ": node slot " + std::to_string(slot) +
                        " has implausible item count");
  }
  out->mbr.lo = Vec(dim);
  out->mbr.hi = Vec(dim);
  for (int i = 0; i < dim; ++i) out->mbr.lo.v[i] = dec.F64();
  for (int i = 0; i < dim; ++i) out->mbr.hi.v[i] = dec.F64();
  out->items.assign(static_cast<size_t>(num_items), 0);
  for (int32_t& item : out->items) item = dec.I32();
}

int64_t SnapshotReader::node_bytes_read() const {
  return node_bytes_read_.load(std::memory_order_relaxed);
}

}  // namespace kspr
