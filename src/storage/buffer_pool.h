// Real buffer pool behind a disk-backed R-tree.
//
// BufferPool composes the PageTracker LRU policy core with actual I/O: it
// registers itself as the tracker's Listener, so every miss the tracker
// counts triggers one real pread + decode (OnPageRead) and every eviction
// or retire releases the decoded frame (OnPageDropped). Because policy
// decisions are made by the SAME code the standalone simulator runs, a
// pool and a plain PageTracker given identical configuration and access
// sequence produce identical read counts — the exact-match property
// bench_fig19 gates in CI.
//
// Frame lifetime: FetchNode returns `const Node&`. Query traversals hold
// such references across further fetches (a parent node while its
// children are visited), so an evicted frame cannot be destroyed
// immediately — a racing fetch may have evicted a page another thread is
// still reading. Dropped frames are therefore parked on a graveyard and
// destroyed only by ReclaimGraveyard(), which callers run at quiesce
// points (no reader in flight): the engine's update path does it
// automatically, long read-only runs should call it between batches.
//
// Lock order: tracker mutex -> frames mutex (the listener hooks run under
// the tracker's mutex and take the frames mutex; FetchNode takes the
// frames mutex only after Access returns).

#ifndef KSPR_STORAGE_BUFFER_POOL_H_
#define KSPR_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "index/rtree.h"
#include "io/page_tracker.h"
#include "storage/snapshot_reader.h"

namespace kspr {

class BufferPool : public RTree::NodeSource, private PageTracker::Listener {
 public:
  /// One flat LRU of `buffer_pages` frames over `reader`'s node pages.
  /// The reader must outlive the pool.
  BufferPool(SnapshotReader* reader, int buffer_pages);
  ~BufferPool() override;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Switches to per-level LRU partitions (PageTracker::ConfigureLevels):
  /// slot -> level from the snapshot directory, `level_capacity[l]` frames
  /// for level l. Setup-time only — must not race FetchNode.
  void ConfigureLevels(std::vector<uint8_t> level_of_slot,
                       std::vector<int> level_capacity);

  /// Pages node `id` in (buffer hit: no I/O; miss: pread + checksum +
  /// decode) and returns the cached frame. Safe from many threads. Throws
  /// SnapshotError if the node page is corrupt. The reference stays valid
  /// until the next ReclaimGraveyard/DetachIo.
  const RTree::Node& FetchNode(int id) override;

  /// The policy core. Exposed so the owning engine can attach it to the
  /// R-tree (SetTracker) for continued accounting + Retire after
  /// materialisation, and so tests/benches can read hit/miss counters —
  /// reads() are REAL preads here, not simulation.
  PageTracker* tracker() { return &tracker_; }
  const PageTracker* tracker() const { return &tracker_; }

  /// Stops serving I/O: clears the listener hookup and destroys all
  /// frames (resident and graveyard). The tracker keeps its residency
  /// state and counters and keeps simulating. Called by the engine after
  /// Materialize, under quiesce — no FetchNode may be in flight and no
  /// frame reference may be held across this call.
  void DetachIo();

  /// Destroys parked (evicted) frames. Quiesce points only: no frame
  /// reference may be held across this call.
  void ReclaimGraveyard();

  /// Wall time spent inside pread + decode, and bytes fetched. The
  /// simulated-model counterpart is tracker()->io_millis().
  double real_read_ms() const {
    return static_cast<double>(
               read_ns_.load(std::memory_order_relaxed)) /
           1e6;
  }
  int64_t bytes_read() const {
    return reader_ == nullptr ? 0 : reader_->node_bytes_read();
  }

  size_t frames_resident() const;
  size_t graveyard_size() const;

 private:
  void OnPageRead(int page_id) override;
  void OnPageDropped(int page_id) override;

  SnapshotReader* reader_;
  PageTracker tracker_;
  std::atomic<bool> io_enabled_{true};
  std::atomic<int64_t> read_ns_{0};

  mutable Mutex frames_mu_;
  std::unordered_map<int, std::unique_ptr<RTree::Node>> frames_
      KSPR_GUARDED_BY(frames_mu_);
  std::vector<std::unique_ptr<RTree::Node>> graveyard_
      KSPR_GUARDED_BY(frames_mu_);
};

}  // namespace kspr

#endif  // KSPR_STORAGE_BUFFER_POOL_H_
