#!/usr/bin/env python3
"""Repo-invariant linter: mechanical checks the compiler cannot express.

Usage:
    scripts/lint_invariants.py                 # lint src/ (the default tree)
    scripts/lint_invariants.py path1 path2 ... # lint explicit files/dirs

Rules (suppress a single line with `// lint:allow(rule-id) reason`, placed
on the offending line or the line directly above it):

  raw-mutex          std::mutex / std::shared_mutex / std::condition_variable
                     / std lock guards (and their headers) anywhere outside
                     src/common/sync.h. Everything goes through the annotated
                     kspr wrappers so Clang's thread-safety analysis sees it.

  bare-future-wait   .get() / .wait*() on a future inside src/shard/.
                     Every shard-future wait must funnel through
                     ShardRouter::AwaitShard, which owns the deadline and the
                     TransportError conversion. (Heuristic: matches waits on
                     identifiers containing "future"/"fut"; the rule is a
                     tripwire, not a proof.)

  nondeterminism     rand()/srand()/time(NULL)/std::random_device/default-
                     seeded std::mt19937 in src/. Deterministic paths must
                     take an explicit seed (see common/rng.h) so runs and
                     fault schedules replay exactly.

  wire-count-bound   a decoder loop in src/net/wire.* bounded by a count read
                     via raw .U32()/.U64(). Counts that size a loop must come
                     from WireReader::Count(min_elem_size), which caps the
                     count against the bytes actually remaining — otherwise a
                     hostile frame makes the decoder allocate/iterate 4G
                     elements.

  reentrancy-doc     a header declares a function taking a *Callback or
                     Listener* parameter without a `// REENTRANCY:` line in
                     the preceding doc comment. Callbacks here run under
                     engine/router/tracker locks; the contract must be
                     written where the caller reads the signature.

Exit status: 0 when clean, 1 when any finding is reported.
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_timed_)?"
    r"(?:mutex|shared_mutex|condition_variable(?:_any)?|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock)\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)

FUTURE_WAIT_RE = re.compile(
    r"([A-Za-z_][\w\.\->\[\]]*)\s*(?:\.|->)\s*(get\s*\(\s*\)|wait(?:_for|_until)?\s*\()"
)
FUTURE_NAME_RE = re.compile(r"fut|future|promise", re.IGNORECASE)

NONDET_RES = [
    re.compile(r"(?<!\w)(?:std::)?s?rand\s*\("),
    re.compile(r"\bstd::random_device\b|\brandom_device\s+\w+"),
    re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
    # A default-constructed mt19937 is seeded with a fixed constant, which
    # reads deterministic but silently correlates every instance.
    re.compile(r"\bmt19937(?:_64)?\s+\w+\s*;"),
]

WIRE_RAW_COUNT_RE = re.compile(r"\b(\w+)\s*=\s*\w+(?:\.|->)U(?:32|64)\s*\(\s*\)")
WIRE_SAFE_COUNT_RE = re.compile(r"\b(\w+)\s*=\s*\w+(?:\.|->)Count\s*\(")
WIRE_LOOP_RE = re.compile(r"\bfor\s*\(.*?[<!]=?\s*(\w+)\s*;")

CALLBACK_PARAM_RE = re.compile(r"\b\w+Callback\s+\w+\s*[,)]|\bListener\s*\*\s*\w+\s*[,)]")
REENTRANCY_DOC_LOOKBACK = 12


def is_allowed(rule, lines, idx):
    """True if line `idx` (0-based) or the line above carries lint:allow(rule)."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if m and m.group(1) == rule:
            return True
    return False


def rel(path):
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{rel(self.path)}:{self.lineno}: [{self.rule}] {self.message}"


def check_raw_mutex(path, lines):
    if path.name == "sync.h" and path.parent.name == "common":
        return []
    findings = []
    for i, line in enumerate(lines):
        m = RAW_MUTEX_RE.search(line)
        if m and not is_allowed("raw-mutex", lines, i):
            findings.append(Finding(
                path, i + 1, "raw-mutex",
                f"raw std sync primitive `{m.group(0).strip()}` — use the "
                "annotated wrappers in common/sync.h"))
    return findings


def check_bare_future_wait(path, lines):
    if "shard" not in path.parts:
        return []
    findings = []
    for i, line in enumerate(lines):
        for m in FUTURE_WAIT_RE.finditer(line):
            receiver, call = m.group(1), m.group(2)
            if not FUTURE_NAME_RE.search(receiver):
                continue
            if is_allowed("bare-future-wait", lines, i):
                continue
            findings.append(Finding(
                path, i + 1, "bare-future-wait",
                f"`{receiver}.{call.strip()}...` waits on a shard future "
                "directly — route it through ShardRouter::AwaitShard"))
    return findings


def check_nondeterminism(path, lines):
    findings = []
    for i, line in enumerate(lines):
        for pattern in NONDET_RES:
            m = pattern.search(line)
            if m and not is_allowed("nondeterminism", lines, i):
                findings.append(Finding(
                    path, i + 1, "nondeterminism",
                    f"`{m.group(0).strip()}` — deterministic paths must take "
                    "an explicit seed (see common/rng.h)"))
                break
    return findings


def check_wire_count_bound(path, lines):
    if not (path.parent.name == "net" and path.stem.startswith("wire")):
        return []
    findings = []
    raw_counts = {}   # var -> line it was read on
    for i, line in enumerate(lines):
        for m in WIRE_SAFE_COUNT_RE.finditer(line):
            raw_counts.pop(m.group(1), None)
        for m in WIRE_RAW_COUNT_RE.finditer(line):
            raw_counts[m.group(1)] = i + 1
        loop = WIRE_LOOP_RE.search(line)
        if loop and loop.group(1) in raw_counts:
            if not is_allowed("wire-count-bound", lines, i):
                findings.append(Finding(
                    path, i + 1, "wire-count-bound",
                    f"loop bounded by `{loop.group(1)}` read via raw U32/U64 "
                    f"on line {raw_counts[loop.group(1)]} — read counts with "
                    "WireReader::Count(min_elem_size)"))
    return findings


def check_reentrancy_doc(path, lines):
    if path.suffix not in {".h", ".hpp"}:
        return []
    findings = []
    for i, line in enumerate(lines):
        m = CALLBACK_PARAM_RE.search(line)
        if not m or is_allowed("reentrancy-doc", lines, i):
            continue
        lookback = lines[max(0, i - REENTRANCY_DOC_LOOKBACK):i]
        if any("REENTRANCY:" in prev for prev in lookback):
            continue
        findings.append(Finding(
            path, i + 1, "reentrancy-doc",
            f"`{m.group(0).strip()}` parameter without a `// REENTRANCY:` "
            "line in the preceding doc comment — state which lock the "
            "callback runs under and what it must not call back into"))
    return findings


CHECKS = [
    check_raw_mutex,
    check_bare_future_wait,
    check_nondeterminism,
    check_wire_count_bound,
    check_reentrancy_doc,
]


def lint_file(path):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"WARN: unreadable {rel(path)}: {err}")
        return []
    lines = text.splitlines()
    findings = []
    for check in CHECKS:
        findings.extend(check(path, lines))
    return findings


def collect_files(targets):
    files = []
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = REPO_ROOT / path
        if path.is_dir():
            # The fixture corpus is deliberately dirty; it is linted
            # file-by-file by tests/lint_fixtures/run_fixture_tests.py.
            files.extend(p for p in sorted(path.rglob("*"))
                         if p.suffix in CXX_SUFFIXES
                         and "lint_fixtures" not in p.parts)
        elif path.is_file():
            files.append(path)
        else:
            print(f"WARN: no such path {target}")
    return files


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src/)")
    args = parser.parse_args()

    targets = args.paths or ["src"]
    files = collect_files(targets)
    if not files:
        print("FAIL: nothing to lint")
        return 1

    findings = []
    for path in files:
        findings.extend(lint_file(path))

    for finding in findings:
        print(f"FAIL: {finding}")
    if findings:
        print(f"\n{len(findings)} invariant violation(s) in "
              f"{len(files)} file(s). Suppress a deliberate exception with "
              "`// lint:allow(rule-id) reason` on or above the line.")
        return 1
    print(f"PASS: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
