#!/usr/bin/env python3
"""Intra-repo markdown link checker for the CI 'docs' job.

Scans the repo's markdown files (top-level *.md plus docs/) and fails when

  * a relative link points at a file or directory that does not exist, or
  * an anchor (same-file `#heading` or cross-file `FILE.md#heading`) does
    not match any heading in the target file, using GitHub's slug rules
    (lowercase, punctuation stripped, spaces to hyphens, duplicate slugs
    numbered -1, -2, ...).

External links (http/https/mailto) are deliberately NOT fetched: network
checks are flaky in CI and the gate must be deterministic. Links inside
fenced code blocks and inline code spans are ignored.

Usage:  check_markdown_links.py [FILE.md ...]    # default: repo-wide scan
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — target captured up to the first unescaped ')'. Images
# (![alt](...)) match too via the optional leading '!'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def default_files():
    files = sorted(REPO_ROOT.glob("*.md"))
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def github_slug(heading, seen):
    """GitHub's anchor slug for a heading, disambiguated against `seen`."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[!\"#$%&'()*+,./:;<=>?@\[\\\]^{|}~]", "", text.lower())
    slug = text.strip().replace(" ", "-")
    if slug in seen:
        n = 1
        while f"{slug}-{n}" in seen:
            n += 1
        slug = f"{slug}-{n}"
    seen.add(slug)
    return slug


def body_lines(path):
    """Lines outside fenced code blocks, inline code spans blanked."""
    out = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            out.append((line, True))
        else:
            out.append((line, in_fence))
    return out


def anchors_of(path, cache):
    if path not in cache:
        seen = set()
        for line, in_code in body_lines(path):
            if in_code:
                continue
            m = HEADING_RE.match(line)
            if m:
                github_slug(m.group(2), seen)
        cache[path] = seen
    return cache[path]


def check_file(path, anchor_cache):
    errors = []
    for lineno, (line, in_code) in enumerate(body_lines(path), start=1):
        if in_code:
            continue
        scannable = CODE_SPAN_RE.sub("", line)
        for m in LINK_RE.finditer(scannable):
            target = m.group(1)
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            rel, _, anchor = target.partition("#")
            if rel:
                dest = (path.parent / rel).resolve()
                if not dest.exists():
                    errors.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                                  f"broken link target '{target}'")
                    continue
            else:
                dest = path
            if anchor and dest.suffix == ".md" and dest.is_file():
                if anchor not in anchors_of(dest, anchor_cache):
                    errors.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                                  f"no heading for anchor '#{anchor}' in "
                                  f"{dest.relative_to(REPO_ROOT)}")
    return errors


def main(argv):
    files = [Path(a).resolve() for a in argv[1:]] or default_files()
    anchor_cache = {}
    errors = []
    for path in files:
        if not path.is_file():
            errors.append(f"{path}: not a file")
            continue
        errors.extend(check_file(path, anchor_cache))
    for e in errors:
        print(f"FAIL  {e}")
    checked = len(files)
    print(f"{len(errors)} broken link(s) across {checked} file(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
