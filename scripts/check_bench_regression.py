#!/usr/bin/env python3
"""Benchmark regression gate for the CI perf pipeline.

Compares the BENCH_*.json files produced by the quick-bench set against
the checked-in baseline (bench/baseline.json) and fails the build when a
gated metric regresses beyond its tolerance.

Two input formats are understood:
  * the repo's JsonReport format: {"bench": name, "rows": [{...}, ...]}
  * google-benchmark --benchmark_out JSON: {"benchmarks": [{...}, ...]}
    (each entry is treated as a row with its "name" field as the key)

Baseline schema (bench/baseline.json):
  {
    "metrics": [
      {
        "name":      "engine_throughput/qps_1worker",   # report label
        "bench":     "engine_throughput",   # JsonReport "bench" field
        "select":    {"section": "sweep", "workers": 1},  # row filter
        "field":     "qps",                 # value to extract
        "agg":       "first" | "min" | "max" | "sum",     # over matches
        "value":     42.0,                  # baseline value
        "direction": "higher" | "lower" | "exact",
        "tolerance": 0.25                   # relative; 0 for exact ints
      }, ...
    ]
  }

A metric may also gate a RATIO of two extractions (e.g. the warm-vs-cold
LP speedup): add a "denominator" object with its own select/field/agg
(bench defaults to the metric's); the measured value becomes
numerator / denominator.

direction semantics (relative tolerance t, baseline b, measured m):
  higher: fail when m < b * (1 - t)   (throughput-style metrics)
  lower:  fail when m > b * (1 + t)   (latency-style metrics)
  exact:  fail when |m - b| > t * max(1, |b|)  (deterministic counters)

Benches or metrics missing from the run are reported as warnings, not
failures, so the gate degrades gracefully when a bench is skipped.
Refresh the baseline with:  check_bench_regression.py --update BENCH_*.json
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "bench" / "baseline.json"


def load_reports(paths):
    """Maps bench name -> list of row dicts."""
    reports = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if "rows" in doc:  # JsonReport format
            reports.setdefault(doc.get("bench", Path(path).stem), []).extend(
                doc["rows"]
            )
        elif "benchmarks" in doc:  # google-benchmark format
            name = Path(path).stem
            if name.startswith("BENCH_"):
                name = name[len("BENCH_"):]
            reports.setdefault(name, []).extend(doc["benchmarks"])
        else:
            print(f"warning: {path}: unrecognised format, skipped")
    return reports


def select_rows(rows, criteria):
    out = []
    for row in rows:
        if all(row.get(k) == v for k, v in criteria.items()):
            out.append(row)
    return out


def extract_one(reports, bench, select, field, agg):
    rows = reports.get(bench)
    if rows is None:
        return None, f"bench '{bench}' not in this run"
    matches = select_rows(rows, select)
    if not matches:
        return None, f"no row matches select={select}"
    values = []
    for row in matches:
        if field not in row:
            return None, f"field '{field}' missing from row"
        values.append(float(row[field]))
    if agg == "first":
        return values[0], None
    if agg == "min":
        return min(values), None
    if agg == "max":
        return max(values), None
    if agg == "sum":
        return sum(values), None
    return None, f"unknown agg '{agg}'"


def extract(reports, metric):
    num, err = extract_one(reports, metric["bench"], metric.get("select", {}),
                           metric["field"], metric.get("agg", "first"))
    if err is not None:
        return None, err
    den_spec = metric.get("denominator")
    if den_spec is None:
        return num, None
    den, err = extract_one(
        reports,
        den_spec.get("bench", metric["bench"]),
        den_spec.get("select", {}),
        den_spec.get("field", metric["field"]),
        den_spec.get("agg", "first"),
    )
    if err is not None:
        return None, f"denominator: {err}"
    if den == 0:
        return None, "denominator extracted as zero"
    return num / den, None


def check(metric, measured):
    baseline = float(metric["value"])
    tolerance = float(metric.get("tolerance", 0.25))
    direction = metric.get("direction", "higher")
    if direction == "higher":
        limit = baseline * (1.0 - tolerance)
        ok = measured >= limit
        detail = f"measured {measured:.6g} >= floor {limit:.6g}"
    elif direction == "lower":
        limit = baseline * (1.0 + tolerance)
        ok = measured <= limit
        detail = f"measured {measured:.6g} <= ceiling {limit:.6g}"
    elif direction == "exact":
        slack = tolerance * max(1.0, abs(baseline))
        ok = abs(measured - baseline) <= slack
        detail = f"measured {measured:.6g} within {slack:.6g} of {baseline:.6g}"
    else:
        return False, f"unknown direction '{direction}'"
    return ok, detail


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline values from this run instead of gating",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    reports = load_reports(args.reports)

    failures = 0
    warnings = 0
    for metric in baseline["metrics"]:
        measured, err = extract(reports, metric)
        name = metric["name"]
        if err is not None:
            print(f"WARN  {name}: {err}")
            warnings += 1
            continue
        if args.update:
            old = metric["value"]
            metric["value"] = measured
            print(f"UPDATE {name}: {old} -> {measured:.6g}")
            continue
        ok, detail = check(metric, measured)
        status = "PASS " if ok else "FAIL "
        print(f"{status} {name}: {detail} "
              f"(baseline {metric['value']}, {metric.get('direction', 'higher')}, "
              f"tol {metric.get('tolerance', 0.25)})")
        if not ok:
            failures += 1

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0

    print(f"\n{failures} failure(s), {warnings} warning(s), "
          f"{len(baseline['metrics'])} metric(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
