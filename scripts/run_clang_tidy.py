#!/usr/bin/env python3
"""Run clang-tidy over the compilation database with a suppression baseline.

Usage:
    scripts/run_clang_tidy.py [--build-dir build] [--jobs N]
                              [--clang-tidy clang-tidy-16]
                              [--baseline scripts/clang_tidy_baseline.txt]

Reads `<build-dir>/compile_commands.json` (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON — the root CMakeLists does this
unconditionally), runs clang-tidy on every translation unit under src/,
and diffs the diagnostics against the committed baseline:

  * a diagnostic NOT in the baseline  -> FAIL (new debt; fix or justify)
  * a baseline entry with no match    -> WARN (stale; delete the entry)

Baseline format, one entry per line:
    <repo-relative-path> <check-name>  # justification

Exit status: 0 when no new diagnostics, 1 otherwise.
"""

import argparse
import concurrent.futures
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$")


def load_baseline(path):
    entries = {}
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            print(f"WARN: {path.name}:{lineno}: malformed entry {raw!r}")
            continue
        entries[(parts[0], parts[1])] = lineno
    return entries


def load_database(build_dir):
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"FAIL: {db_path} not found — configure the build first "
              "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
        return None
    sources = []
    for entry in json.loads(db_path.read_text()):
        src = Path(entry["file"])
        if not src.is_absolute():
            src = Path(entry["directory"]) / src
        src = src.resolve()
        try:
            rel = src.relative_to(REPO_ROOT)
        except ValueError:
            continue
        if rel.parts[0] == "src":
            sources.append(src)
    return sorted(set(sources))


def run_one(clang_tidy, build_dir, source):
    proc = subprocess.run(
        [clang_tidy, "-p", str(build_dir), "--quiet", str(source)],
        capture_output=True, text=True, check=False)
    diags = []
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        path = Path(m.group("path")).resolve()
        try:
            rel = str(path.relative_to(REPO_ROOT))
        except ValueError:
            rel = str(path)
        for check in m.group("check").split(","):
            diags.append((rel, check, int(m.group("line")), m.group("msg")))
    return diags


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy executable to use")
    parser.add_argument("--baseline",
                        default=str(REPO_ROOT / "scripts" / "clang_tidy_baseline.txt"),
                        help="suppression baseline file")
    parser.add_argument("--jobs", type=int, default=8,
                        help="parallel clang-tidy processes")
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        print(f"FAIL: {args.clang_tidy} not on PATH")
        return 1

    build_dir = Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = REPO_ROOT / build_dir
    sources = load_database(build_dir)
    if sources is None:
        return 1
    if not sources:
        print("FAIL: no src/ translation units in the compilation database")
        return 1

    baseline = load_baseline(Path(args.baseline))

    all_diags = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(run_one, args.clang_tidy, build_dir, s)
                   for s in sources]
        for future in concurrent.futures.as_completed(futures):
            all_diags.extend(future.result())

    seen_keys = set()
    new_findings = []
    for rel, check, line, msg in sorted(set(all_diags)):
        key = (rel, check)
        seen_keys.add(key)
        if key not in baseline:
            new_findings.append((rel, check, line, msg))

    for rel, check, line, msg in new_findings:
        print(f"FAIL: {rel}:{line}: {msg} [{check}]")
    for (rel, check), lineno in sorted(baseline.items()):
        if (rel, check) not in seen_keys:
            print(f"WARN: stale baseline entry (line {lineno}): {rel} {check}")

    print(f"\nchecked {len(sources)} translation unit(s): "
          f"{len(new_findings)} new finding(s), "
          f"{len(baseline)} baseline entr(ies)")
    return 1 if new_findings else 0


if __name__ == "__main__":
    sys.exit(main())
